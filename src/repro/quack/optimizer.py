"""Plan optimizer: filter pushdown, join ordering, index injection.

The headline rewrites:

* Paper §4.3 — when a filter conjunct has the shape ``column <op>
  constant`` over a base-table scan and an attached index advertises
  support for ``<op>`` on that column, the sequential scan is replaced by
  an index scan (the predicate is kept as a recheck filter, which is
  exact and cheap).
* Cost-based join ordering — when every leaf of a flattened comma-join
  carries ``ANALYZE`` statistics (:mod:`repro.quack.stats`), join order
  is chosen by dynamic programming over estimated cardinalities (up to
  :data:`DP_MAX_RELATIONS` leaves; greedy pairwise merging beyond), and
  each join picks hash vs index-nested-loop vs nested-loop by estimated
  cost instead of by rule.  Without statistics — or under
  ``SET cbo = off`` — the plan falls back to the original heuristic
  left-deep build, bit-identically.
"""

from __future__ import annotations

import copy
import math
from typing import Any, Callable

from ..analysis.config import verification_enabled
from .binder import _NOT_CONSTANT, fold_constant
from .plan import (
    BoundColumnRef,
    BoundConjunction,
    BoundExpr,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundNot,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalIndexScan,
    LogicalJoin,
    LogicalLimit,
    LogicalMaterializedCTE,
    LogicalOperator,
    LogicalProject,
    LogicalSetOp,
    LogicalSort,
    PrunePredicate,
)
from . import stats as table_stats
from . import storage

#: Exhaustive DP join enumeration up to this many relations; greedy
#: pairwise merging beyond (3^n subset partitions grow too fast).
DP_MAX_RELATIONS = 8

#: Cost-model weights (unit: row touches).
_HASH_BUILD_FACTOR = 2.0
_CROSS_PENALTY = 10.0


def optimize(plan: LogicalOperator, stats=None, cbo: bool = True,
             zone_maps: bool = True) -> LogicalOperator:
    """Rewrite a bound plan. Idempotent; returns a new tree — the input
    plan is never mutated, so a cached bound plan can be re-optimized.

    ``stats`` (a :class:`repro.observability.QueryStatistics`) receives
    per-rule fire counts under ``optimizer.rule.<name>`` and cost-based
    planning counters under ``optimizer.cbo.<name>``.  ``cbo`` is the
    ``SET cbo = on|off`` kill switch: when off — or when any join leaf
    lacks ``ANALYZE`` statistics — planning stays on the heuristic path
    and produces the same plan as before the cost-based optimizer
    existed.  ``zone_maps`` is the ``SET zone_maps = on|off`` kill
    switch for attaching row-group prune predicates to table scans.
    Under verification mode every filter rewrite is snapshot-checked
    (schema stability, predicate preservation, index-injection validity)
    and a violation names the optimizer rule that fired."""
    verifier = None
    if verification_enabled():
        from ..analysis.verifier import RewriteVerifier

        verifier = RewriteVerifier()
    return _Optimizer(stats, verifier, cbo, zone_maps).rewrite(plan)


def _with(op: LogicalOperator, **fields) -> LogicalOperator:
    """Shallow-copy ``op`` with ``fields`` replaced (copy-on-write)."""
    clone = copy.copy(op)
    for name, value in fields.items():
        setattr(clone, name, value)
    return clone


class _Optimizer:
    def __init__(self, stats=None, verifier=None, cbo: bool = True,
                 zone_maps: bool = True):
        self._stats = stats
        self._verifier = verifier
        self._cbo = cbo
        self._zone_maps = zone_maps

    def _fire(self, rule: str, n: int = 1) -> None:
        if self._verifier is not None:
            self._verifier.note_fire(rule)
        if self._stats is not None:
            self._stats.bump(f"optimizer.rule.{rule}", n)

    def _count(self, name: str, n: int = 1) -> None:
        if self._stats is not None:
            self._stats.bump(f"optimizer.cbo.{name}", n)

    def rewrite(self, op: LogicalOperator) -> LogicalOperator:
        if isinstance(op, LogicalFilter):
            return self._rewrite_filter(op)
        if isinstance(op, LogicalJoin):
            return _with(
                op,
                left=self.rewrite(op.left),
                right=self.rewrite(op.right),
            )
        if isinstance(op, LogicalProject):
            return _with(op, child=self.rewrite(op.child))
        if isinstance(op, (LogicalSort, LogicalLimit, LogicalDistinct,
                           LogicalAggregate)):
            return _with(op, child=self.rewrite(op.child))
        if isinstance(op, LogicalSetOp):
            return _with(
                op,
                left=self.rewrite(op.left),
                right=self.rewrite(op.right),
            )
        if isinstance(op, LogicalMaterializedCTE):
            return _with(
                op,
                ctes=[
                    (cte_id, name, self.rewrite(plan))
                    for cte_id, name, plan in op.ctes
                ],
                child=self.rewrite(op.child),
            )
        return op

    # -- filter over a join tree -------------------------------------------------

    def _rewrite_filter(self, op: LogicalFilter) -> LogicalOperator:
        if self._verifier is None:
            return self._rewrite_filter_inner(op)
        snapshot = self._verifier.snapshot_filter(op)
        mark = len(self._verifier.fired)
        result = self._rewrite_filter_inner(op)
        self._verifier.check_filter_rewrite(
            snapshot, result, self._verifier.fired[mark:]
        )
        if self._stats is not None:
            self._stats.bump("verify.rules_checked")
        return result

    def _rewrite_filter_inner(self, op: LogicalFilter) -> LogicalOperator:
        conjuncts = _split_conjuncts(op.condition)
        leaves, flattened = self._flatten(op.child)
        if not flattened:
            child = self.rewrite(op.child)
            child, remaining = self._try_push_into_leaf(child, conjuncts)
            if not remaining:
                return child
            return LogicalFilter(_combine(remaining), child)

        # Leaf offsets in the flat column space.
        offsets: list[int] = []
        total = 0
        for leaf in leaves:
            offsets.append(total)
            total += len(leaf.output_types())

        # Classify conjuncts: single-leaf ones push down (rebased to
        # the leaf's own space); multi-leaf ones become join predicates;
        # column-free ones stay above the whole join tree.
        per_leaf: list[list[BoundExpr]] = [[] for _ in leaves]
        multi: list[tuple[BoundExpr, tuple[int, ...]]] = []
        top_level: list[BoundExpr] = []
        for conj in conjuncts:
            used = conj.columns_used()
            if not used:
                top_level.append(conj)
                continue
            touched = sorted(
                {self._leaf_of(index, offsets, leaves) for index in used}
            )
            if len(touched) == 1:
                self._fire("filter_pushdown")
                per_leaf[touched[0]].append(
                    _rebase(conj, -offsets[touched[0]])
                )
            else:
                multi.append((conj, tuple(touched)))

        # Rebuild: optimize each leaf with its own filters + index injection.
        new_leaves: list[LogicalOperator] = []
        for leaf, filters in zip(leaves, per_leaf):
            leaf = self.rewrite(leaf)
            leaf, remaining = self._try_push_into_leaf(leaf, filters)
            if remaining:
                leaf = LogicalFilter(_combine(remaining), leaf)
            new_leaves.append(leaf)

        if self._cbo and len(leaves) >= 2:
            result = self._cbo_plan(
                leaves, new_leaves, offsets, per_leaf, multi, top_level
            )
            if result is not None:
                return result

        return self._heuristic_plan(
            new_leaves, offsets, multi, top_level
        )

    def _heuristic_plan(
        self,
        new_leaves: list[LogicalOperator],
        offsets: list[int],
        multi: list[tuple[BoundExpr, tuple[int, ...]]],
        top_level: list[BoundExpr],
    ) -> LogicalOperator:
        """The original rule-based left-deep build in binder order."""
        per_join: list[list[BoundExpr]] = [[] for _ in new_leaves]
        for conj, touched in multi:
            per_join[touched[-1]].append(conj)

        plan = new_leaves[0]
        for i in range(1, len(new_leaves)):
            boundary = offsets[i]
            equi_keys: list[tuple[BoundExpr, BoundExpr]] = []
            residuals: list[BoundExpr] = []
            for conj in per_join[i]:
                pair = _extract_equi_key(conj, boundary)
                if pair is not None:
                    self._fire("hash_join_extraction")
                    left_key, right_key = pair
                    equi_keys.append(
                        (left_key, _rebase(right_key, -boundary))
                    )
                else:
                    residuals.append(conj)
            index_probe = None
            if not equi_keys:
                index_probe = _match_join_index(
                    residuals, boundary, new_leaves[i]
                )
                if index_probe is not None:
                    self._fire("index_nl_join")
            join_type = "inner" if (equi_keys or residuals) else "cross"
            plan = LogicalJoin(
                plan,
                new_leaves[i],
                join_type,
                equi_keys=equi_keys,
                residual=_combine(residuals) if residuals else None,
                index_probe=index_probe,
            )
        if top_level:
            plan = LogicalFilter(_combine(top_level), plan)
        return plan

    def _flatten(
        self, op: LogicalOperator
    ) -> tuple[list[LogicalOperator], bool]:
        """Flatten a pure cross-join tree into its leaves."""
        if isinstance(op, LogicalJoin) and op.join_type == "cross" and (
            not op.equi_keys and op.residual is None
        ):
            left_leaves, _ = self._flatten(op.left)
            right_leaves, _ = self._flatten(op.right)
            return left_leaves + right_leaves, True
        return [op], False

    @staticmethod
    def _leaf_of(index: int, offsets: list[int],
                 leaves: list[LogicalOperator]) -> int:
        for i in range(len(offsets) - 1, -1, -1):
            if index >= offsets[i]:
                return i
        return 0

    # -- cost-based join ordering ------------------------------------------------

    def _cbo_plan(
        self,
        leaves: list[LogicalOperator],
        new_leaves: list[LogicalOperator],
        offsets: list[int],
        per_leaf: list[list[BoundExpr]],
        multi: list[tuple[BoundExpr, tuple[int, ...]]],
        top_level: list[BoundExpr],
    ) -> LogicalOperator | None:
        """Join-order search over the flattened leaves; ``None`` when
        statistics are missing (heuristic fallback)."""
        stats_per_leaf: list[table_stats.TableStats | None] = []
        for leaf in leaves:
            stats = None
            if isinstance(leaf, LogicalGet):
                stats = getattr(leaf.table, "stats", None)
            stats_per_leaf.append(stats)
        if any(s is None for s in stats_per_leaf):
            self._count("stats_missing")
            return None

        n = len(leaves)
        widths = [len(leaf.output_types()) for leaf in leaves]

        def column_stats_at(flat: int) -> table_stats.ColumnStats | None:
            li = self._leaf_of(flat, offsets, leaves)
            return stats_per_leaf[li].column(flat - offsets[li])

        # Estimated leaf cardinalities after pushed filters.
        leaf_rows: list[float] = []
        for i, leaf_statistics in enumerate(stats_per_leaf):
            rows = float(max(leaf_statistics.row_count, 1))
            local = leaf_statistics.column
            for conj in per_leaf[i]:
                rows *= _estimate_conjunct(conj, local)
            leaf_rows.append(max(rows, 1.0))

        edges = [
            _JoinEdge.build(conj, touched, offsets, column_stats_at,
                            new_leaves)
            for conj, touched in multi
        ]

        searcher = _JoinSearch(n, widths, leaf_rows, edges)
        if n <= DP_MAX_RELATIONS:
            tree = searcher.dynamic_programming()
            self._count("dp_plans")
        else:
            tree = searcher.greedy()
            self._count("greedy_plans")
        self._count("planned")
        self._fire("cbo_join_order")

        plan = self._build_cbo_tree(
            tree, searcher, leaves, new_leaves, offsets, widths
        )
        if top_level:
            plan = LogicalFilter(_combine(top_level), plan)
        return plan

    def _build_cbo_tree(
        self,
        tree,
        searcher: "_JoinSearch",
        leaves: list[LogicalOperator],
        new_leaves: list[LogicalOperator],
        offsets: list[int],
        widths: list[int],
    ) -> LogicalOperator:
        """Materialize the winning abstract join tree as operators."""
        order = _flatten_tree(tree)
        new_offsets: dict[int, int] = {}
        position = 0
        for leaf_index in order:
            new_offsets[leaf_index] = position
            position += widths[leaf_index]
        total = position
        old_to_new: dict[int, int] = {}
        for leaf_index in range(len(leaves)):
            for k in range(widths[leaf_index]):
                old_to_new[offsets[leaf_index] + k] = (
                    new_offsets[leaf_index] + k
                )

        pending = list(searcher.edges)

        def build(node) -> tuple[LogicalOperator, int, int, int]:
            """Returns (operator, leaf mask, start offset, width)."""
            if isinstance(node, int):
                leaf_op = copy.copy(new_leaves[node])
                leaf_op.estimated_rows = int(
                    round(searcher.leaf_rows[node])
                )
                return (leaf_op, 1 << node, new_offsets[node],
                        widths[node])
            left_tree, right_tree, method = node
            left_op, lmask, lstart, lwidth = build(left_tree)
            right_op, rmask, rstart, rwidth = build(right_tree)
            node_mask = lmask | rmask
            node_start = min(lstart, rstart)
            crossing: list[BoundExpr] = []
            for edge in list(pending):
                if (edge.mask & lmask and edge.mask & rmask
                        and not edge.mask & ~node_mask):
                    pending.remove(edge)
                    crossing.append(_remap(
                        edge.conj,
                        lambda old: old_to_new[old] - node_start,
                    ))
            boundary = lwidth
            equi_keys: list[tuple[BoundExpr, BoundExpr]] = []
            residuals: list[BoundExpr] = []
            index_probe = None
            if method == "inl":
                index_probe = _match_join_index(
                    crossing, boundary, right_op
                )
            if index_probe is not None:
                self._fire("index_nl_join")
                self._count("index_nl_joins")
                residuals = crossing
            else:
                for conj in crossing:
                    pair = _extract_equi_key(conj, boundary)
                    if pair is not None:
                        self._fire("hash_join_extraction")
                        left_key, right_key = pair
                        equi_keys.append(
                            (left_key, _rebase(right_key, -boundary))
                        )
                    else:
                        residuals.append(conj)
                if equi_keys:
                    self._count("hash_joins")
                elif residuals:
                    self._count("nl_joins")
                else:
                    self._count("cross_joins")
            join_type = "inner" if (equi_keys or residuals) else "cross"
            join = LogicalJoin(
                left_op,
                right_op,
                join_type,
                equi_keys=equi_keys,
                residual=_combine(residuals) if residuals else None,
                index_probe=index_probe,
            )
            join.estimated_rows = int(round(searcher.rows_of(node_mask)))
            return join, node_mask, node_start, lwidth + rwidth

        root, _, _, _ = build(tree)
        if order != sorted(order):
            self._count("reordered")
            types: list = []
            names: list[str] = []
            for leaf in leaves:
                types.extend(leaf.output_types())
                names.extend(leaf.output_names())
            exprs = [
                BoundColumnRef(old_to_new[old], types[old], names[old])
                for old in range(total)
            ]
            root = LogicalProject(exprs, names, root)
        return root

    # -- index injection (paper §4.3) ------------------------------------------------

    def _try_push_into_leaf(
        self, leaf: LogicalOperator, filters: list[BoundExpr]
    ) -> tuple[LogicalOperator, list[BoundExpr]]:
        if not isinstance(leaf, LogicalGet):
            return leaf, filters
        if leaf.table.indexes:
            for conj in filters:
                probe = _match_index_predicate(conj)
                if probe is None:
                    continue
                column_index, op_name, constant = probe
                column_name = leaf.table.column_names[column_index]
                for index in leaf.table.indexes:
                    if index.matches(op_name, column_name, constant):
                        self._fire("index_scan_injection")
                        scan = LogicalIndexScan(
                            leaf.table, index, op_name, constant
                        )
                        # Keep every conjunct (including the matched one)
                        # as a recheck filter: exact and cheap on the
                        # candidate set.
                        return scan, filters
        prune = self._prune_predicates(filters)
        if prune:
            self._fire("zone_map_pushdown")
            # Advisory only: the full conjunction stays above the scan as
            # the exact recheck, so the RewriteVerifier's predicate
            # multiset is untouched.
            leaf = _with(leaf, prune=tuple(prune))
        return leaf, filters

    def _prune_predicates(self, filters: list[BoundExpr]) -> list:
        """Conjuncts in ``col <op> const`` shape whose operator the
        zone maps can reason about (comparisons, BETWEEN halves, box
        overlap/containment, the eIntersects bbox prefilter)."""
        if not self._zone_maps:
            return []
        out = []
        for conj in filters:
            parts = _comparison_parts(conj) or _match_index_predicate(conj)
            if parts is None:
                continue
            column_index, op_name, constant = parts
            key = op_name if op_name in _COMPARISON_FLIP else op_name.lower()
            if key not in storage.PRUNABLE_OPS:
                continue
            out.append(PrunePredicate(
                column=column_index,
                op_name=op_name,
                constant=constant,
                expr=conj,
            ))
        return out


# ---------------------------------------------------------------------------
# Join-order search (DP + greedy) over estimated cardinalities
# ---------------------------------------------------------------------------


class _JoinEdge:
    """One multi-leaf conjunct with its selectivity and physical options."""

    __slots__ = ("conj", "mask", "selectivity", "equi_sides",
                 "probe_candidates")

    def __init__(self, conj, mask, selectivity, equi_sides,
                 probe_candidates):
        self.conj = conj
        self.mask = mask
        self.selectivity = selectivity
        #: for ``a = b`` conjuncts: the leaf masks of the two operand
        #: sides (hash-joinable when they fall on opposite subtrees)
        self.equi_sides = equi_sides
        #: ``(right_leaf, other_side_mask)`` pairs: an index on
        #: ``right_leaf`` can serve this conjunct when the other operand
        #: is fully available on the probe side
        self.probe_candidates = probe_candidates

    @staticmethod
    def build(conj, touched, offsets, column_stats_at, new_leaves):
        mask = 0
        for leaf_index in touched:
            mask |= 1 << leaf_index
        selectivity = _estimate_conjunct(conj, column_stats_at)

        def leaf_mask(expr: BoundExpr) -> int:
            out = 0
            for flat in expr.columns_used():
                out |= 1 << _Optimizer._leaf_of(flat, offsets, new_leaves)
            return out

        equi_sides = None
        if (isinstance(conj, BoundFunction) and conj.name == "="
                and len(conj.args) == 2):
            a, b = conj.args
            if (a.columns_used() and b.columns_used()
                    and _subquery_free(a) and _subquery_free(b)):
                side_a, side_b = leaf_mask(a), leaf_mask(b)
                if not side_a & side_b:
                    equi_sides = (side_a, side_b)

        probe_candidates = []
        if (isinstance(conj, BoundFunction)
                and conj.name in _JOIN_INDEX_OPS
                and len(conj.args) == 2):
            for own, other in ((conj.args[0], conj.args[1]),
                               (conj.args[1], conj.args[0])):
                if not isinstance(own, BoundColumnRef):
                    continue
                leaf_index = _Optimizer._leaf_of(
                    own.index, offsets, new_leaves
                )
                leaf = new_leaves[leaf_index]
                if not isinstance(leaf, LogicalGet):
                    continue
                other_cols = other.columns_used()
                if not other_cols or not _subquery_free(other):
                    continue
                other_mask = leaf_mask(other)
                if other_mask & (1 << leaf_index):
                    continue
                column_name = leaf.table.column_names[
                    own.index - offsets[leaf_index]
                ]
                if any(
                    index.matches(conj.name, column_name, None)
                    for index in leaf.table.indexes
                ):
                    probe_candidates.append((leaf_index, other_mask))
        return _JoinEdge(conj, mask, selectivity, equi_sides,
                         probe_candidates)


class _JoinSearch:
    """Cardinality-driven join-order enumeration.

    Trees are nested ``(left, right, method)`` tuples over leaf indices;
    ``method`` is the cost model's physical pick (``hash`` / ``inl`` /
    ``nl`` / ``cross``) — construction re-validates it and falls back
    gracefully when the shape no longer matches."""

    def __init__(self, n: int, widths: list[int],
                 leaf_rows: list[float], edges: list[_JoinEdge]):
        self.n = n
        self.widths = widths
        self.leaf_rows = leaf_rows
        self.edges = edges
        self._rows_cache: dict[int, float] = {}

    def rows_of(self, mask: int) -> float:
        cached = self._rows_cache.get(mask)
        if cached is not None:
            return cached
        rows = 1.0
        for i in range(self.n):
            if mask & (1 << i):
                rows *= self.leaf_rows[i]
        for edge in self.edges:
            if not edge.mask & ~mask:
                rows *= edge.selectivity
        rows = max(rows, 1.0)
        self._rows_cache[mask] = rows
        return rows

    def join_cost(self, lm: int, rm: int) -> tuple[float, str]:
        """Cost and physical method of joining subtrees ``lm`` ⨝ ``rm``
        (the right side is always the build/inner side downstream)."""
        out = self.rows_of(lm | rm)
        rows_left = self.rows_of(lm)
        rows_right = self.rows_of(rm)
        both = lm | rm
        hash_possible = False
        inl_possible = False
        crossing = False
        for edge in self.edges:
            if edge.mask & ~both or not (edge.mask & lm and edge.mask & rm):
                continue
            crossing = True
            if edge.equi_sides is not None:
                side_a, side_b = edge.equi_sides
                if ((not side_a & ~lm and not side_b & ~rm)
                        or (not side_a & ~rm and not side_b & ~lm)):
                    hash_possible = True
            for leaf_index, other_mask in edge.probe_candidates:
                if rm == (1 << leaf_index) and not other_mask & ~lm:
                    inl_possible = True
        best_cost = rows_left * rows_right + out
        method = "nl" if crossing else "cross"
        if not crossing:
            best_cost = _CROSS_PENALTY * rows_left * rows_right + out
        if hash_possible:
            cost = (rows_left + _HASH_BUILD_FACTOR * rows_right + out)
            if cost < best_cost:
                best_cost, method = cost, "hash"
        if inl_possible:
            cost = rows_left * (1.0 + math.log2(1.0 + rows_right)) + out
            if cost < best_cost:
                best_cost, method = cost, "inl"
        return best_cost, method

    def dynamic_programming(self):
        best: dict[int, tuple[float, Any]] = {}
        for i in range(self.n):
            best[1 << i] = (0.0, i)
        full = (1 << self.n) - 1
        masks = sorted(range(1, full + 1), key=_popcount)
        for mask in masks:
            if _popcount(mask) < 2:
                continue
            winner: tuple[float, Any] | None = None
            sub = (mask - 1) & mask
            while sub:
                rem = mask ^ sub
                if rem:
                    cost_left, tree_left = best[sub]
                    cost_right, tree_right = best[rem]
                    join_cost, method = self.join_cost(sub, rem)
                    total = cost_left + cost_right + join_cost
                    if winner is None or total < winner[0]:
                        winner = (total, (tree_left, tree_right, method))
                sub = (sub - 1) & mask
            best[mask] = winner
        return best[full][1]

    def greedy(self):
        components: list[tuple[int, Any]] = [
            (1 << i, i) for i in range(self.n)
        ]
        while len(components) > 1:
            winner = None
            for li, (lmask, ltree) in enumerate(components):
                for ri, (rmask, rtree) in enumerate(components):
                    if li == ri:
                        continue
                    cost, method = self.join_cost(lmask, rmask)
                    if winner is None or cost < winner[0]:
                        winner = (cost, li, ri, method)
            _, li, ri, method = winner
            lmask, ltree = components[li]
            rmask, rtree = components[ri]
            merged = (lmask | rmask, (ltree, rtree, method))
            components = [
                c for i, c in enumerate(components) if i not in (li, ri)
            ]
            components.append(merged)
        return components[0][1]


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def _flatten_tree(tree) -> list[int]:
    if isinstance(tree, int):
        return [tree]
    left, right, _ = tree
    return _flatten_tree(left) + _flatten_tree(right)


# ---------------------------------------------------------------------------
# Predicate selectivity over bound expressions
# ---------------------------------------------------------------------------

_COMPARISON_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                    "=": "=", "!=": "!=", "<>": "<>"}
_LOWER_BOUND_OPS = (">", ">=")
_UPPER_BOUND_OPS = ("<", "<=")

_StatsResolver = Callable[[int], "table_stats.ColumnStats | None"]


def _comparison_parts(
    conj: BoundExpr,
) -> tuple[int, str, Any] | None:
    """Match ``col <op> constant`` (either operand order; the operator is
    flipped when the column is on the right)."""
    if not isinstance(conj, BoundFunction) or len(conj.args) != 2:
        return None
    op_name = conj.name
    left, right = conj.args
    if isinstance(left, BoundColumnRef):
        constant = fold_constant(right)
        if constant is not _NOT_CONSTANT and constant is not None:
            return (left.index, op_name, constant)
    if isinstance(right, BoundColumnRef) and op_name in _COMPARISON_FLIP:
        constant = fold_constant(left)
        if constant is not _NOT_CONSTANT and constant is not None:
            return (right.index, _COMPARISON_FLIP[op_name], constant)
    return None


def _estimate_conjunct(conj: BoundExpr,
                       resolver: _StatsResolver) -> float:
    """Estimated selectivity of one predicate against column statistics
    resolved by ``resolver`` (flat column index → ColumnStats)."""
    if isinstance(conj, BoundConjunction):
        if conj.op == "AND":
            return _estimate_and(_split_conjuncts(conj), resolver)
        miss = 1.0
        for arg in conj.args:
            miss *= 1.0 - _estimate_conjunct(arg, resolver)
        return table_stats.clamp01(1.0 - miss)
    if isinstance(conj, BoundNot):
        return table_stats.clamp01(
            1.0 - _estimate_conjunct(conj.child, resolver)
        )
    if isinstance(conj, BoundIsNull):
        fraction = 0.05
        if isinstance(conj.child, BoundColumnRef):
            stats = resolver(conj.child.index)
            if stats is not None and stats.row_count > 0:
                fraction = stats.null_fraction()
        return table_stats.clamp01(
            1.0 - fraction if conj.negated else fraction
        )
    if isinstance(conj, BoundInList):
        if isinstance(conj.operand, BoundColumnRef):
            stats = resolver(conj.operand.index)
            one = table_stats.comparison_selectivity(stats, "=", None)
            selectivity = len(conj.items) * one
        else:
            selectivity = (
                len(conj.items) * table_stats.DEFAULT_EQ_SELECTIVITY
            )
        if conj.negated:
            selectivity = 1.0 - selectivity
        return table_stats.clamp01(selectivity)
    if isinstance(conj, BoundFunction) and len(conj.args) == 2:
        name = conj.name
        a, b = conj.args
        if (name == "=" and isinstance(a, BoundColumnRef)
                and isinstance(b, BoundColumnRef)):
            return table_stats.equi_join_selectivity(
                resolver(a.index), resolver(b.index)
            )
        parts = _comparison_parts(conj)
        if parts is not None:
            index, op_name, constant = parts
            stats = resolver(index)
            if op_name in ("=", "!=", "<>", "<", "<=", ">", ">="):
                return table_stats.comparison_selectivity(
                    stats, op_name, constant
                )
            if op_name in ("&&", "eintersects", "aintersects"):
                return table_stats.overlap_selectivity(stats, constant)
            if op_name == "@>":
                return table_stats.containment_selectivity(
                    stats, constant, True
                )
            if op_name == "<@":
                return table_stats.containment_selectivity(
                    stats, constant, False
                )
        return table_stats.default_selectivity(name)
    return table_stats.clamp01(
        table_stats.DEFAULT_RESIDUAL_SELECTIVITY
    )


def _estimate_and(conjuncts: list[BoundExpr],
                  resolver: _StatsResolver) -> float:
    """Selectivity of a conjunction; paired lower/upper bounds on the
    same column (the binder lowers ``BETWEEN`` to exactly that) estimate
    through the histogram as one range instead of two independent
    comparisons."""
    bounds: dict[int, dict[str, Any]] = {}
    rest: list[BoundExpr] = []
    for conj in conjuncts:
        parts = _comparison_parts(conj)
        if parts is not None:
            index, op_name, constant = parts
            if op_name in _LOWER_BOUND_OPS:
                bounds.setdefault(index, {})["lo"] = constant
                continue
            if op_name in _UPPER_BOUND_OPS:
                bounds.setdefault(index, {})["hi"] = constant
                continue
        rest.append(conj)
    selectivity = 1.0
    for index, pair in bounds.items():
        stats = resolver(index)
        if "lo" in pair and "hi" in pair:
            selectivity *= table_stats.between_selectivity(
                stats, pair["lo"], pair["hi"]
            )
        elif "lo" in pair:
            selectivity *= table_stats.comparison_selectivity(
                stats, ">=", pair["lo"]
            )
        else:
            selectivity *= table_stats.comparison_selectivity(
                stats, "<=", pair["hi"]
            )
    for conj in rest:
        selectivity *= _estimate_conjunct(conj, resolver)
    return table_stats.clamp01(selectivity)


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------


def _split_conjuncts(expr: BoundExpr) -> list[BoundExpr]:
    if isinstance(expr, BoundConjunction) and expr.op == "AND":
        out: list[BoundExpr] = []
        for arg in expr.args:
            out.extend(_split_conjuncts(arg))
        return out
    return [expr]


def _combine(conjuncts: list[BoundExpr]) -> BoundExpr:
    if len(conjuncts) == 1:
        return conjuncts[0]
    from .types import BOOLEAN

    return BoundConjunction("AND", conjuncts, BOOLEAN)


def _transform_columns(
    expr: BoundExpr, transform: Callable[[int], int]
) -> BoundExpr:
    """Rewrite every column index through ``transform`` (returns a copy)."""

    def shift(node: BoundExpr) -> BoundExpr:
        if isinstance(node, BoundColumnRef):
            return BoundColumnRef(
                transform(node.index), node.ltype, node.name
            )
        clone = copy.copy(node)
        from .plan import (
            BoundCase,
            BoundCast,
            BoundConjunction,
            BoundFunction,
            BoundInList,
            BoundIsNull,
            BoundNot,
            BoundSubqueryExpr,
        )

        if isinstance(node, (BoundFunction, BoundConjunction)):
            clone.args = [shift(a) for a in node.args]
        elif isinstance(node, (BoundCast, BoundIsNull, BoundNot)):
            clone.child = shift(node.child)
        elif isinstance(node, BoundInList):
            clone.operand = shift(node.operand)
            clone.items = [shift(i) for i in node.items]
        elif isinstance(node, BoundCase):
            clone.branches = [
                (shift(c), shift(r)) for c, r in node.branches
            ]
            if node.else_result is not None:
                clone.else_result = shift(node.else_result)
        elif isinstance(node, BoundSubqueryExpr):
            clone.outer_params_exprs = [
                shift(p) for p in node.outer_params_exprs
            ]
        return clone

    return shift(expr)


def _rebase(expr: BoundExpr, delta: int) -> BoundExpr:
    """Shift all column indices by ``delta`` (returns a rewritten copy)."""
    return _transform_columns(expr, lambda index: index + delta)


def _remap(expr: BoundExpr,
           transform: Callable[[int], int]) -> BoundExpr:
    """Rewrite column indices through an arbitrary mapping (join
    reordering: binder-flat space → reordered node-local space)."""
    return _transform_columns(expr, transform)


def _extract_equi_key(
    conj: BoundExpr, boundary: int
) -> tuple[BoundExpr, BoundExpr] | None:
    """If ``conj`` is ``left_expr = right_expr`` with the operands cleanly on
    either side of ``boundary``, return (left-side expr, right-side expr)."""
    if not isinstance(conj, BoundFunction) or conj.name != "=":
        return None
    if len(conj.args) != 2:
        return None
    a, b = conj.args
    cols_a = a.columns_used()
    cols_b = b.columns_used()
    if not cols_a or not cols_b:
        return None
    if _subquery_free(a) is False or _subquery_free(b) is False:
        return None
    if max(cols_a) < boundary and min(cols_b) >= boundary:
        return (a, b)
    if max(cols_b) < boundary and min(cols_a) >= boundary:
        return (b, a)
    return None


def _subquery_free(expr: BoundExpr) -> bool:
    from .plan import BoundSubqueryExpr, _children

    if isinstance(expr, BoundSubqueryExpr):
        return False
    return all(_subquery_free(c) for c in _children(expr))


# ---------------------------------------------------------------------------
# Pipeline analysis (morsel-driven parallelism)
# ---------------------------------------------------------------------------

#: Operators that must consume their whole input before producing output.
#: They end a streaming pipeline: the parallel executor scatters the
#: fragment *below* a breaker and gives the breaker itself a
#: parallel-aware merge step (partitioned join build, aggregate partials
#: + combine, per-morsel sort + k-way merge).
_PIPELINE_BREAKERS = (
    LogicalAggregate,
    LogicalSort,
    LogicalDistinct,
    LogicalJoin,
    LogicalSetOp,
)


def is_pipeline_breaker(op: LogicalOperator) -> bool:
    return isinstance(op, _PIPELINE_BREAKERS)


def streaming_fragment(
    op: LogicalOperator,
) -> tuple[list[LogicalOperator], LogicalOperator]:
    """Split ``op`` into its streaming ``[Project|Filter]*`` chain and the
    source operator below it.

    The chain is the unit of morsel parallelism: every chunk the source
    produces can run the whole chain independently on a worker.  The
    returned chain is ordered top-down (``chain[0] is op``); the source
    is the first non-streaming operator (a scan, a pipeline breaker, …).
    """
    chain: list[LogicalOperator] = []
    current = op
    while isinstance(current, (LogicalFilter, LogicalProject)):
        chain.append(current)
        current = current.child
    return chain, current


def _match_index_predicate(
    conj: BoundExpr,
) -> tuple[int, str, Any] | None:
    """Match ``col <op> constant`` (or commuted for symmetric ops)."""
    if not isinstance(conj, BoundFunction) or len(conj.args) != 2:
        return None
    op_name = conj.name
    left, right = conj.args
    column = _as_base_column(left)
    if column is not None:
        constant = fold_constant(right)
        if constant is not _NOT_CONSTANT and constant is not None:
            return (column, op_name, constant)
    if op_name == "&&":  # symmetric: constant && col
        column = _as_base_column(right)
        if column is not None:
            constant = fold_constant(left)
            if constant is not _NOT_CONSTANT and constant is not None:
                return (column, op_name, constant)
    return None


def _as_base_column(expr: BoundExpr) -> int | None:
    if isinstance(expr, BoundColumnRef):
        return expr.index
    return None


_JOIN_INDEX_OPS = ("&&", "@>", "<@")


def _match_join_index(
    residuals: list[BoundExpr], boundary: int, right_leaf
) -> tuple | None:
    """Find a residual of shape ``right_col <op> expr(left)`` (either
    operand order) with an index on the right base table that can serve it
    — the GiST index nested-loop join strategy.  The full residual is kept
    as an exact recheck."""
    if not isinstance(right_leaf, LogicalGet) or not right_leaf.table.indexes:
        return None
    for conj in residuals:
        if not isinstance(conj, BoundFunction) or conj.name not in (
            _JOIN_INDEX_OPS
        ):
            continue
        if len(conj.args) != 2:
            continue
        for right_arg, left_arg in ((conj.args[0], conj.args[1]),
                                    (conj.args[1], conj.args[0])):
            if not isinstance(right_arg, BoundColumnRef):
                continue
            if right_arg.index < boundary:
                continue
            left_cols = left_arg.columns_used()
            if not left_cols or max(left_cols) >= boundary:
                continue
            if not _subquery_free(left_arg):
                continue
            column_name = right_leaf.table.column_names[
                right_arg.index - boundary
            ]
            for index in right_leaf.table.indexes:
                if index.matches(conj.name, column_name, None):
                    return (index, conj.name, left_arg)
    return None
