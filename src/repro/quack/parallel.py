"""Morsel-driven parallel execution: worker pool and scatter machinery.

DuckDB's intra-query parallelism splits table scans into fixed-size
*morsels* and runs pipeline fragments on a worker pool; blocking sinks
(hash-join build, aggregation, sort) consume morsels through
parallel-aware merge steps.  This module provides the engine-side
infrastructure — the executor decides *what* to scatter:

* :class:`MorselPool` — a lazily created ``ThreadPoolExecutor`` owned by
  one connection.  The NumPy kernels release the GIL, so fragments over
  numeric columns genuinely overlap; pure-Python extension payload loops
  interleave but still batch per morsel.
* :func:`run_tasks` / :func:`ordered_map` — scatter helpers.  Every task
  runs inside ``contextvars.copy_context()`` captured at submit time, so
  the per-query contextvars (the ambient statistics scope and the
  kernel-flag snapshot) propagate into pool threads; each task gets a
  worker-local :class:`QueryStatistics` which the coordinator merges
  back, so no counter increments race or vanish.
* :class:`PartitionedJoinBuild` — the parallel hash-join build sink:
  contiguous build-side partitions each build a ``kernels.JoinBuild``
  on a worker, and probes merge partition pair lists back to the exact
  probe-major, build-ascending order of the serial build.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from ..observability.context import activate
from ..observability.stats import QueryStatistics
from . import kernels
from .vector import KernelFallback, Vector

#: Minimum input rows before a blocking sink (join build, aggregate,
#: sort) fans out; below this the scatter overhead dwarfs the work.
MIN_PARALLEL_ROWS = 4096

#: Minimum rows per morsel of a blocking sink's input split.
MIN_MORSEL_ROWS = 1024


def default_workers() -> int:
    """Worker count for connections opened without an explicit choice:
    the ``REPRO_THREADS`` environment variable, else 1 (serial).  Lets
    CI soak the whole suite at ``workers=4`` without touching every
    ``connect()`` call."""
    try:
        return max(1, int(os.environ.get("REPRO_THREADS", "1")))
    except ValueError:
        return 1


class MorselPool:
    """A connection-owned worker pool, created on first parallel query."""

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="quack-morsel",
                )
                self._prestart(self._executor)
            return self._executor

    def _prestart(self, executor: ThreadPoolExecutor) -> None:
        """Spawn the full worker complement up front.

        ``ThreadPoolExecutor`` creates threads lazily — one per submit
        that finds no idle worker — so a producer-bound pipeline that
        never has two tasks in flight funnels every morsel through
        worker 0 forever, and bursty sinks race the spawn path on their
        first batch.  A barrier task per worker forces all threads to
        exist before the first real morsel: a finished worker rejoins
        the queue behind its idle peers, so even strictly sequential
        fragment streams rotate across lanes.
        """
        if self.workers <= 1:
            return
        barrier = threading.Barrier(self.workers)

        def wait() -> None:
            try:
                barrier.wait(timeout=10.0)
            except threading.BrokenBarrierError:
                pass

        for future in [executor.submit(wait) for _ in range(self.workers)]:
            future.result()

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


#: A unit of scattered work: receives the worker-local statistics (for
#: building a worker execution context) and returns any result.
Task = Callable[[QueryStatistics], Any]


def _submit(executor: ThreadPoolExecutor, task: Task):
    """Submit one task wrapped for context propagation and stats isolation.

    The caller's context is captured *here*, at submit time — it carries
    the ambient statistics activation and the per-query kernel-flag
    snapshot into the pool thread.  Inside the worker a fresh local
    :class:`QueryStatistics` is activated on top, so ambient ``count()``
    calls from kernels and indexes record thread-locally instead of
    racing on the coordinator's object.
    """
    captured = contextvars.copy_context()

    def call():
        local = QueryStatistics()

        def invoke():
            with activate(local):
                return task(local)

        return captured.run(invoke), local

    return executor.submit(call)


def run_tasks(pool: MorselPool, tasks: Iterable[Task],
              stats: QueryStatistics | None = None) -> list[Any]:
    """Run tasks on the pool; results in task order.

    Worker-local statistics merge into ``stats`` (when given) as results
    are collected — counter sums and peak gauges survive the pool hop.
    """
    executor = pool.executor()
    futures = [_submit(executor, task) for task in tasks]
    results: list[Any] = []
    for future in futures:
        result, local = future.result()
        if stats is not None:
            stats.merge(local)
        results.append(result)
    return results


def ordered_map(pool: MorselPool, items: Iterable[Any],
                fn: Callable[[Any, QueryStatistics], Any],
                stats: QueryStatistics | None = None,
                window: int | None = None) -> Iterator[Any]:
    """Lazily map ``fn`` over ``items`` on the pool, preserving order.

    At most ``window`` (default ``2 * workers``) tasks are in flight, so
    a streaming source is never fully materialized and results arrive in
    input order — downstream operators observe the same chunk sequence a
    serial run produces.  Abandoning the iterator (e.g. a LIMIT upstream)
    cancels tasks that have not started.
    """
    executor = pool.executor()
    if window is None:
        window = 2 * pool.workers
    pending: deque = deque()

    def finish(future) -> Any:
        result, local = future.result()
        if stats is not None:
            stats.merge(local)
        return result

    try:
        for item in items:
            pending.append(
                _submit(executor, lambda local, item=item: fn(item, local))
            )
            if len(pending) >= window:
                yield finish(pending.popleft())
        while pending:
            yield finish(pending.popleft())
    finally:
        for future in pending:
            future.cancel()


def morsel_ranges(count: int, workers: int,
                  min_rows: int = MIN_MORSEL_ROWS) -> list[tuple[int, int]]:
    """Split ``[0, count)`` into contiguous morsel row ranges.

    Targets ``2 * workers`` morsels (so a slow morsel does not straggle
    the whole sink) but never drops below ``min_rows`` per morsel.
    """
    target = min(2 * workers, max(1, count // min_rows))
    if target <= 1 or count <= 0:
        return [(0, count)]
    bounds = np.linspace(0, count, target + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(target)
        if bounds[i + 1] > bounds[i]
    ]


def row_range(vectors: list[Vector], start: int, end: int) -> list[Vector]:
    """Zero-copy contiguous row range of whole-relation column vectors."""
    return [
        Vector(v.ltype, v.data[start:end], v.validity[start:end])
        for v in vectors
    ]


class PartitionedJoinBuild:
    """Parallel hash-join build: per-partition kernels, merged probes.

    The build side is split into contiguous row-range partitions; each
    partition builds its own :class:`kernels.JoinBuild` on a worker.  A
    probe runs against every partition and the per-partition pair lists
    are merged with one ``np.lexsort`` back to the global probe-major,
    build-ascending order — the exact pair order of the serial kernel
    and of the dict fallback, so the existing join verification
    (``assert_join_pairs_match``) applies unchanged.
    """

    def __init__(self, builds: list, starts: list[int]):
        self._builds = builds
        self._starts = starts

    @property
    def partitions(self) -> int:
        return len(self._builds)

    @classmethod
    def build(cls, pool: MorselPool, key_vectors: list[Vector],
              right_count: int,
              stats: QueryStatistics | None = None,
              trace=None) -> "PartitionedJoinBuild | None":
        """Build partitioned; None when too small or a kernel declines
        (the caller then takes the serial build path).  ``trace`` is the
        query's :class:`~repro.observability.trace.TraceCollector`: each
        partition build emits one ``morsel`` timeline event from its
        worker lane."""
        if right_count < MIN_PARALLEL_ROWS:
            return None
        parts = min(pool.workers, right_count // MIN_MORSEL_ROWS)
        if parts <= 1:
            return None
        bounds = np.linspace(0, right_count, parts + 1, dtype=np.int64)
        ranges = [
            (int(bounds[i]), int(bounds[i + 1])) for i in range(parts)
        ]

        def make_task(start: int, end: int) -> Task:
            def task(local_stats: QueryStatistics):
                opened = time.perf_counter()
                out = kernels.JoinBuild(
                    row_range(key_vectors, start, end), end - start
                )
                if trace is not None:
                    trace.emit(
                        "join_build_partition", "morsel", opened,
                        time.perf_counter() - opened, rows=end - start,
                    )
                return out

            return task

        try:
            builds = run_tasks(
                pool, [make_task(s, e) for s, e in ranges], stats
            )
        except KernelFallback:
            return None
        return cls(builds, [s for s, _ in ranges])

    def probe(self, probe_vectors: list[Vector],
              n: int) -> tuple[np.ndarray, np.ndarray]:
        """Probe all partitions; pairs in serial-equivalent order.

        Raises :class:`KernelFallback` (from the partition kernels) when
        a probe chunk cannot be handled — the caller's existing fallback
        path takes over, exactly as with a serial ``JoinBuild``.
        """
        left_parts: list[np.ndarray] = []
        right_parts: list[np.ndarray] = []
        for build, start in zip(self._builds, self._starts):
            li, ri = build.probe(probe_vectors, n)
            if len(li):
                left_parts.append(li)
                right_parts.append(ri + start)
        if not left_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        li = np.concatenate(left_parts)
        ri = np.concatenate(right_parts)
        order = np.lexsort((ri, li))
        return li[order], ri[order]
