"""Database persistence: save/load a quack database to a single file.

DuckDB is an *embedded persistent* database; this module keeps the
historical ``save_database``/``load_database`` entry points but the
format is now the columnar segment file of :mod:`.storage` — compressed
per-column segments in row groups, zone maps in the footer, versioned
with a one-release read shim for the old pickled ``quackdb-v1`` files.
Indexes are rebuilt on load (like PostgreSQL's REINDEX after restore)
so the file format stays independent of index internals.
"""

from __future__ import annotations

from .database import Database
from .storage import read_database, write_database


def save_database(database: Database, path: str) -> int:
    """Write all tables (schema + rows) to ``path``; returns table count.

    Index *definitions* are stored so they can be rebuilt on load."""
    return write_database(database, path)


def load_database(database: Database, path: str) -> int:
    """Load tables saved by :func:`save_database` into ``database``.

    The database must already have the needed extensions loaded (types are
    resolved by name through its type registry); indexes are rebuilt."""
    return read_database(database, path)
