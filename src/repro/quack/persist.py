"""Database persistence: save/load a quack database to a single file.

DuckDB is an *embedded persistent* database; this module gives the
stand-in the same property at reproduction fidelity: the catalog's tables
(schema + rows) round-trip through one file.  Extension types serialize
through the same pickled-payload path the row engine's varlena storage
uses; indexes are rebuilt on load (like PostgreSQL's REINDEX after
restore) so the file format stays independent of index internals.
"""

from __future__ import annotations

import pickle

from .catalog import Table
from .database import Database
from .errors import QuackError

_MAGIC = "quackdb-v1"


def save_database(database: Database, path: str) -> int:
    """Write all tables (schema + rows) to ``path``; returns table count.

    Index *definitions* are stored so they can be rebuilt on load."""
    tables_payload = []
    for table in database.catalog.tables.values():
        rows = []
        for chunk, _ in table.scan():
            rows.extend(chunk.rows())
        tables_payload.append(
            {
                "name": table.name,
                "columns": [
                    (name, ltype.name)
                    for name, ltype in zip(table.column_names,
                                           table.column_types)
                ],
                "rows": rows,
                "indexes": [
                    (index.name, index.type_name, index.column)
                    for index in table.indexes
                ],
            }
        )
    document = {
        "magic": _MAGIC,
        "extensions": list(database.loaded_extensions),
        "tables": tables_payload,
    }
    with open(path, "wb") as handle:
        pickle.dump(document, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return len(tables_payload)


def load_database(database: Database, path: str) -> int:
    """Load tables saved by :func:`save_database` into ``database``.

    The database must already have the needed extensions loaded (types are
    resolved by name through its type registry); indexes are rebuilt."""
    with open(path, "rb") as handle:
        try:
            document = pickle.load(handle)
        except Exception as exc:
            raise QuackError(f"{path}: not a quack database file: {exc}")
    if not isinstance(document, dict) or document.get("magic") != _MAGIC:
        raise QuackError(f"{path}: not a quack database file")
    count = 0
    for payload in document["tables"]:
        columns = [
            (name, database.types.lookup(type_name))
            for name, type_name in payload["columns"]
        ]
        table = Table(payload["name"], columns)
        table.append_rows(payload["rows"])
        database.catalog.create_table(table, or_replace=True)
        for index_name, type_name, column in payload["indexes"]:
            index_type = database.config.index_types.lookup(type_name)
            index = index_type.create_instance(
                name=index_name, table=table, column=column,
                database=database,
            )
            database.catalog.add_index(index)
        count += 1
    return count
