"""Bound expressions and logical plan operators.

The binder turns parsed AST into these typed structures; the optimizer
rewrites them; the executor interprets them chunk-at-a-time.  Column
references use flat indices into the operator's output column space
(left-deep join order), DuckDB-style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .catalog import Table, TableIndex
from .functions import AggregateFunction, CastFunction, ScalarFunction
from .types import LogicalType


# ---------------------------------------------------------------------------
# Bound expressions
# ---------------------------------------------------------------------------


class BoundExpr:
    ltype: LogicalType

    def columns_used(self) -> set[int]:
        """Flat input column indices this expression reads."""
        out: set[int] = set()
        _collect_columns(self, out)
        return out


def _collect_columns(expr: BoundExpr, out: set[int]) -> None:
    if isinstance(expr, BoundColumnRef):
        out.add(expr.index)
    for child in _children(expr):
        _collect_columns(child, out)


def _children(expr: BoundExpr) -> list[BoundExpr]:
    if isinstance(expr, (BoundFunction, BoundConjunction)):
        return list(expr.args)
    if isinstance(expr, BoundCast):
        return [expr.child]
    if isinstance(expr, BoundIsNull):
        return [expr.child]
    if isinstance(expr, BoundNot):
        return [expr.child]
    if isinstance(expr, BoundInList):
        return [expr.operand, *expr.items]
    if isinstance(expr, BoundCase):
        out = []
        for cond, result in expr.branches:
            out.extend((cond, result))
        if expr.else_result is not None:
            out.append(expr.else_result)
        return out
    if isinstance(expr, BoundSubqueryExpr):
        return list(expr.outer_params_exprs)
    return []


@dataclass
class BoundConstant(BoundExpr):
    value: Any
    ltype: LogicalType


@dataclass
class BoundColumnRef(BoundExpr):
    index: int
    ltype: LogicalType
    name: str = ""


@dataclass
class BoundFunction(BoundExpr):
    function: ScalarFunction
    args: list[BoundExpr]
    ltype: LogicalType
    name: str = ""


@dataclass
class BoundCast(BoundExpr):
    child: BoundExpr
    ltype: LogicalType
    cast: CastFunction | None  # None = builtin physical cast
    target_name: str = ""


@dataclass
class BoundConjunction(BoundExpr):
    op: str  # 'AND' | 'OR'
    args: list[BoundExpr]
    ltype: LogicalType


@dataclass
class BoundNot(BoundExpr):
    child: BoundExpr
    ltype: LogicalType


@dataclass
class BoundIsNull(BoundExpr):
    child: BoundExpr
    negated: bool
    ltype: LogicalType


@dataclass
class BoundInList(BoundExpr):
    operand: BoundExpr
    items: list[BoundExpr]
    negated: bool
    eq_function: ScalarFunction
    ltype: LogicalType


@dataclass
class BoundCase(BoundExpr):
    branches: list[tuple[BoundExpr, BoundExpr]]
    else_result: BoundExpr | None
    ltype: LogicalType


@dataclass
class BoundSubqueryExpr(BoundExpr):
    """A subquery in expression position.

    ``kind``: 'scalar' | 'exists' | 'in' | 'quantified'.
    ``outer_params_exprs`` are expressions over the *outer* column space
    whose per-row values parameterize the correlated subquery plan (they
    feed the plan's :class:`BoundParameterRef` nodes by position).
    """

    kind: str
    plan: "LogicalOperator"
    ltype: LogicalType
    outer_params_exprs: list[BoundExpr] = field(default_factory=list)
    # for 'in' and 'quantified':
    operand: BoundExpr | None = None
    comparison: ScalarFunction | None = None
    quantifier: str | None = None  # 'ALL' | 'ANY'
    negated: bool = False


@dataclass
class BoundParameterRef(BoundExpr):
    """Reference to a correlated outer value inside a subquery plan."""

    param_index: int
    ltype: LogicalType
    name: str = ""


@dataclass
class AggregateSpec:
    function: AggregateFunction
    args: list[BoundExpr]
    distinct: bool
    ltype: LogicalType
    name: str = ""


# ---------------------------------------------------------------------------
# Logical operators
# ---------------------------------------------------------------------------


class LogicalOperator:
    """Base logical/physical plan node (quack interprets these directly)."""

    #: Cost-based optimizer cardinality estimate; ``None`` on plans built
    #: without statistics, so heuristic plans print unchanged.
    estimated_rows = None

    def output_types(self) -> list[LogicalType]:
        raise NotImplementedError

    def output_names(self) -> list[str]:
        raise NotImplementedError

    def children(self) -> list["LogicalOperator"]:
        return []

    def explain(self, indent: int = 0) -> str:
        label = self._explain_label()
        if self.estimated_rows is not None:
            label += f" (est={self.estimated_rows})"
        lines = [" " * indent + label]
        for child in self.children():
            lines.append(child.explain(indent + 2))
        return "\n".join(lines)

    def _explain_label(self) -> str:
        return type(self).__name__.replace("Logical", "").upper()


@dataclass(frozen=True)
class PrunePredicate:
    """A pushed-down conjunct in zone-map-checkable shape.

    ``column``/``op_name``/``constant`` drive the row-group skip test
    (:func:`repro.quack.storage.zone_map_prunes`); ``expr`` keeps the
    original bound conjunct so the verification layer can re-evaluate it
    over skipped groups.  Pruning is advisory only — the full filter
    stays in the plan above the scan as the exact recheck.
    """

    column: int
    op_name: str
    constant: Any
    expr: Any = None


@dataclass
class LogicalGet(LogicalOperator):
    table: Table
    #: zone-map prune predicates attached by the optimizer; empty tuple
    #: means plain full scan
    prune: tuple = ()

    def output_types(self) -> list[LogicalType]:
        return list(self.table.column_types)

    def output_names(self) -> list[str]:
        return list(self.table.column_names)

    def _explain_label(self) -> str:
        label = f"SEQ_SCAN {self.table.name}"
        if self.prune:
            ops = ", ".join(
                f"{self.table.column_names[p.column]} {p.op_name}"
                for p in self.prune
            )
            label += f" [zonemap: {ops}]"
        return label


@dataclass
class LogicalIndexScan(LogicalOperator):
    table: Table
    index: TableIndex
    op_name: str
    constant: Any

    def output_types(self) -> list[LogicalType]:
        return list(self.table.column_types)

    def output_names(self) -> list[str]:
        return list(self.table.column_names)

    def _explain_label(self) -> str:
        return (
            f"{self.index.type_name}_INDEX_SCAN {self.table.name} "
            f"({self.index.column} {self.op_name} …)"
        )


@dataclass
class LogicalTableFunction(LogicalOperator):
    name: str
    args: list[Any]  # evaluated constants
    names: list[str]
    types: list[LogicalType]

    def output_types(self) -> list[LogicalType]:
        return list(self.types)

    def output_names(self) -> list[str]:
        return list(self.names)

    def _explain_label(self) -> str:
        return f"TABLE_FUNCTION {self.name}"


@dataclass
class LogicalCTERef(LogicalOperator):
    cte_id: int
    name: str
    names: list[str]
    types: list[LogicalType]

    def output_types(self) -> list[LogicalType]:
        return list(self.types)

    def output_names(self) -> list[str]:
        return list(self.names)

    def _explain_label(self) -> str:
        return f"CTE_SCAN {self.name}"


@dataclass
class LogicalFilter(LogicalOperator):
    condition: BoundExpr
    child: LogicalOperator

    def output_types(self) -> list[LogicalType]:
        return self.child.output_types()

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def _explain_label(self) -> str:
        return "FILTER"


@dataclass
class LogicalProject(LogicalOperator):
    exprs: list[BoundExpr]
    names: list[str]
    child: LogicalOperator

    def output_types(self) -> list[LogicalType]:
        return [e.ltype for e in self.exprs]

    def output_names(self) -> list[str]:
        return list(self.names)

    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def _explain_label(self) -> str:
        return f"PROJECTION [{', '.join(self.names)}]"


@dataclass
class LogicalJoin(LogicalOperator):
    left: LogicalOperator
    right: LogicalOperator
    join_type: str  # 'cross' | 'inner' | 'left'
    #: equi-join key pairs (left expr over left cols, right expr over right
    #: cols, both rebased to their own child's column space)
    equi_keys: list[tuple[BoundExpr, BoundExpr]] = field(default_factory=list)
    #: residual condition over the combined column space
    residual: BoundExpr | None = None
    #: parameterized index probe: (index, op_name, left_expr) — per left
    #: row, probe the right base table's index with the evaluated left
    #: expression (index nested-loop join, the GiST join strategy)
    index_probe: tuple | None = None

    def output_types(self) -> list[LogicalType]:
        return self.left.output_types() + self.right.output_types()

    def output_names(self) -> list[str]:
        return self.left.output_names() + self.right.output_names()

    def children(self) -> list[LogicalOperator]:
        return [self.left, self.right]

    def _explain_label(self) -> str:
        if self.equi_keys:
            kind = "HASH_JOIN"
        elif self.index_probe is not None:
            kind = f"INDEX_NL_JOIN [{self.index_probe[0].name}]"
        elif self.residual is not None:
            kind = "NESTED_LOOP_JOIN"
        else:
            kind = "CROSS_PRODUCT"
        return f"{kind} ({self.join_type})"


@dataclass
class LogicalAggregate(LogicalOperator):
    groups: list[BoundExpr]
    aggregates: list[AggregateSpec]
    child: LogicalOperator
    group_names: list[str] = field(default_factory=list)

    def output_types(self) -> list[LogicalType]:
        return [g.ltype for g in self.groups] + [
            a.ltype for a in self.aggregates
        ]

    def output_names(self) -> list[str]:
        names = list(self.group_names) or [
            f"group{i}" for i in range(len(self.groups))
        ]
        return names + [a.name or a.function.name for a in self.aggregates]

    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def _explain_label(self) -> str:
        aggs = ", ".join(a.function.name for a in self.aggregates)
        return f"HASH_GROUP_BY [{aggs}]"


@dataclass
class LogicalSort(LogicalOperator):
    keys: list[tuple[BoundExpr, bool, bool | None]]  # expr, asc, nulls_first
    child: LogicalOperator

    def output_types(self) -> list[LogicalType]:
        return self.child.output_types()

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def _explain_label(self) -> str:
        return "ORDER_BY"


@dataclass
class LogicalLimit(LogicalOperator):
    limit: int | None
    offset: int
    child: LogicalOperator

    def output_types(self) -> list[LogicalType]:
        return self.child.output_types()

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def _explain_label(self) -> str:
        return f"LIMIT {self.limit}"


@dataclass
class LogicalDistinct(LogicalOperator):
    child: LogicalOperator

    def output_types(self) -> list[LogicalType]:
        return self.child.output_types()

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def children(self) -> list[LogicalOperator]:
        return [self.child]

    def _explain_label(self) -> str:
        return "DISTINCT"


@dataclass
class LogicalSetOp(LogicalOperator):
    """UNION / UNION ALL / EXCEPT / INTERSECT."""

    kind: str  # 'union' | 'except' | 'intersect'
    all: bool
    left: LogicalOperator
    right: LogicalOperator

    def output_types(self) -> list[LogicalType]:
        return self.left.output_types()

    def output_names(self) -> list[str]:
        return self.left.output_names()

    def children(self) -> list[LogicalOperator]:
        return [self.left, self.right]

    def _explain_label(self) -> str:
        suffix = " ALL" if self.all else ""
        return f"{self.kind.upper()}{suffix}"


@dataclass
class LogicalMaterializedCTE(LogicalOperator):
    """Wraps the main plan with CTE definitions materialized on demand."""

    ctes: list[tuple[int, str, LogicalOperator]]  # (id, name, plan)
    child: LogicalOperator

    def output_types(self) -> list[LogicalType]:
        return self.child.output_types()

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def children(self) -> list[LogicalOperator]:
        return [plan for _, _, plan in self.ctes] + [self.child]

    def _explain_label(self) -> str:
        return f"CTE [{', '.join(name for _, name, _ in self.ctes)}]"
