"""EXPLAIN ANALYZE: instrumented plan execution.

A :class:`PlanProfiler` collects per-operator row counts, inclusive
timings, kernel-vs-fallback telemetry, and free-form operator metrics
(index probe counts, candidate counts).  The executor drives it through
:class:`~repro.quack.executor.ExecutionContext` — profiling is a
property of the context, not of module state, so profiled executions
nest and interleave safely (the old implementation monkey-patched
``execute_plan`` and corrupted concurrent runs).

Rendered text, DuckDB-style::

    PHASES parse=0.03ms bind=0.21ms optimize=0.05ms execute=1.80ms total=2.09ms
    PROJECTION [a, b]            (rows=120, 0.8ms)
      FILTER                     (rows=120, 2.1ms)
        SEQ_SCAN trips           (rows=5000, 0.4ms)

Timing is inclusive of children (each operator's clock runs while it
waits on its input), so the root time is the query's total.
:meth:`PlanProfiler.to_dict` is the ``format="json"`` structured tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..observability import QueryStatistics
from .executor import ExecutionContext, OperatorKernelStats, execute_plan
from .plan import LogicalOperator


@dataclass
class OperatorStats:
    rows: int = 0
    seconds: float = 0.0
    invocations: int = 0


class PlanProfiler:
    """Collects per-operator statistics during one (or more) executions."""

    def __init__(self):
        self.stats: dict[int, OperatorStats] = {}
        #: Kernel-vs-fallback counters keyed by ``id(op)``; filled in by
        #: the aggregate/sort/distinct operators while the profiler runs.
        self.kernel_stats: dict[int, OperatorKernelStats] = {}
        #: free-form per-operator counters (probes, candidates, ...)
        self.op_metrics: dict[int, dict[str, int]] = {}

    def stats_for(self, op: LogicalOperator) -> OperatorStats:
        return self.stats.setdefault(id(op), OperatorStats())

    def kernel_stats_for(self, op: LogicalOperator) -> OperatorKernelStats:
        found = self.kernel_stats.get(id(op))
        if found is None:
            found = self.kernel_stats[id(op)] = OperatorKernelStats()
        return found

    def annotate(self, op: LogicalOperator, key: str, n: int = 1) -> None:
        metrics = self.op_metrics.setdefault(id(op), {})
        metrics[key] = metrics.get(key, 0) + n

    # -- rendering ------------------------------------------------------------

    def _annotation(self, op: LogicalOperator) -> str:
        stats = self.stats.get(id(op))
        estimated = getattr(op, "estimated_rows", None)
        if stats is None:
            if estimated is not None:
                return f"(est={estimated}, not executed)"
            return "(not executed)"
        parts = [f"rows={stats.rows}"]
        if estimated is not None:
            parts.append(f"est={estimated}")
        kstats = self.kernel_stats.get(id(op))
        if kstats is not None:
            parts.append(f"rows_in={kstats.rows_in}")
            parts.append(f"kernel={kstats.kernel}")
            parts.append(f"fallback={kstats.fallback}")
        for key, value in sorted(
            (self.op_metrics.get(id(op)) or {}).items()
        ):
            parts.append(f"{key}={value}")
        parts.append(f"{stats.seconds * 1000:.2f}ms")
        return f"({', '.join(parts)})"

    def render(self, plan: LogicalOperator,
               query_stats: QueryStatistics | None = None) -> str:
        lines: list[str] = []
        if query_stats is not None:
            lines.append(f"PHASES {query_stats.format_phases()}")
            counters = query_stats.format_counters()
            if counters:
                lines.append(f"COUNTERS {counters}")

        def visit(op: LogicalOperator, indent: int) -> None:
            lines.append(
                f"{' ' * indent}{op._explain_label()}  "
                f"{self._annotation(op)}"
            )
            for child in op.children():
                visit(child, indent + 2)

        visit(plan, 0)
        return "\n".join(lines)

    def trace_dict(self, plan: LogicalOperator,
                   query_stats: QueryStatistics,
                   engine: str = "quack") -> dict[str, Any]:
        """The ``format="trace"`` output: the query's timeline (phase
        spans + operator/fragment/morsel events on per-worker lanes) as
        Chrome trace-event JSON, with the plan text riding along in
        ``otherData`` so the viewer tab is self-describing."""
        from ..observability.trace import chrome_trace

        return chrome_trace(
            query_stats, meta={"engine": engine, "plan": plan.explain()}
        )

    def to_dict(self, plan: LogicalOperator,
                query_stats: QueryStatistics | None = None
                ) -> dict[str, Any]:
        """The structured (``format="json"``) EXPLAIN ANALYZE tree."""

        def visit(op: LogicalOperator) -> dict[str, Any]:
            node: dict[str, Any] = {"operator": op._explain_label()}
            estimated = getattr(op, "estimated_rows", None)
            if estimated is not None:
                node["estimated_rows"] = estimated
            stats = self.stats.get(id(op))
            if stats is not None:
                node["rows"] = stats.rows
                node["seconds"] = stats.seconds
                node["invocations"] = stats.invocations
            kstats = self.kernel_stats.get(id(op))
            if kstats is not None:
                node["kernel"] = {
                    "rows_in": kstats.rows_in,
                    "kernel": kstats.kernel,
                    "fallback": kstats.fallback,
                }
            metrics = self.op_metrics.get(id(op))
            if metrics:
                node["metrics"] = dict(metrics)
            node["children"] = [visit(child) for child in op.children()]
            return node

        out: dict[str, Any] = {"plan": visit(plan)}
        if query_stats is not None:
            out["phases"] = query_stats.phase_seconds()
            out["total_seconds"] = query_stats.total_seconds()
            out["counters"] = dict(query_stats.counters)
            out["gauges"] = dict(query_stats.gauges)
        return out


def execute_plan_profiled(
    plan: LogicalOperator, ctx: ExecutionContext, profiler: PlanProfiler
):
    """Execute a plan with every operator instrumented.

    Derives a child context carrying the profiler; nothing global is
    touched, so profiled executions are re-entrant and concurrent-safe."""
    yield from execute_plan(plan, ExecutionContext(ctx, profiler=profiler))
