"""EXPLAIN ANALYZE: instrumented plan execution.

Wraps every operator of a plan with row/time counters and renders the
annotated tree, DuckDB-style::

    PROJECTION [a, b]            (rows=120, 0.8ms)
      FILTER                     (rows=120, 2.1ms)
        SEQ_SCAN trips           (rows=5000, 0.4ms)

Timing is inclusive of children (each operator's clock runs while it waits
on its input), so the root time is the query's total.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from .executor import ExecutionContext, OperatorKernelStats, execute_plan
from .plan import LogicalOperator


@dataclass
class OperatorStats:
    rows: int = 0
    seconds: float = 0.0
    invocations: int = 0


class PlanProfiler:
    """Collects per-operator statistics during one execution."""

    def __init__(self):
        self.stats: dict[int, OperatorStats] = {}
        #: Kernel-vs-fallback counters keyed by ``id(op)``; filled in by
        #: the aggregate/sort/distinct operators while the profiler runs.
        self.kernel_stats: dict[int, OperatorKernelStats] = {}

    def stats_for(self, op: LogicalOperator) -> OperatorStats:
        return self.stats.setdefault(id(op), OperatorStats())

    def render(self, plan: LogicalOperator) -> str:
        lines: list[str] = []

        def visit(op: LogicalOperator, indent: int) -> None:
            stats = self.stats.get(id(op))
            label = op._explain_label()
            if stats is None:
                annotation = "(not executed)"
            else:
                kstats = self.kernel_stats.get(id(op))
                kernel = (
                    f", rows_in={kstats.rows_in}, kernel={kstats.kernel}, "
                    f"fallback={kstats.fallback}"
                    if kstats is not None
                    else ""
                )
                annotation = (
                    f"(rows={stats.rows}{kernel}, "
                    f"{stats.seconds * 1000:.2f}ms)"
                )
            lines.append(f"{' ' * indent}{label}  {annotation}")
            for child in op.children():
                visit(child, indent + 2)

        visit(plan, 0)
        return "\n".join(lines)


def execute_plan_profiled(
    plan: LogicalOperator, ctx: ExecutionContext, profiler: PlanProfiler
):
    """Execute a plan with every operator instrumented.

    Monkey-wraps :func:`repro.quack.executor.execute_plan` for the
    duration of the iteration so that nested operator invocations are
    captured too."""
    from . import executor as executor_module

    original = executor_module.execute_plan
    original_sink = executor_module._KERNEL_STATS_SINK

    def instrumented(op: LogicalOperator, inner_ctx):
        stats = profiler.stats_for(op)
        stats.invocations += 1

        def wrapped() -> Iterator:
            start = time.perf_counter()
            try:
                for chunk in original(op, inner_ctx):
                    stats.rows += chunk.count
                    stats.seconds += time.perf_counter() - start
                    yield chunk
                    start = time.perf_counter()
                stats.seconds += time.perf_counter() - start
            except GeneratorExit:
                stats.seconds += time.perf_counter() - start
                raise

        return wrapped()

    executor_module.execute_plan = instrumented
    executor_module._KERNEL_STATS_SINK = profiler.kernel_stats
    try:
        yield from instrumented(plan, ctx)
    finally:
        executor_module.execute_plan = original
        executor_module._KERNEL_STATS_SINK = original_sink
