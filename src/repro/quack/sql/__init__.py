"""SQL front end (lexer, AST, parser) shared by quack and pgsim."""

from . import ast
from .lexer import Token, tokenize
from .parser import Parser, parse_one, parse_sql

__all__ = ["Parser", "Token", "ast", "parse_one", "parse_sql", "tokenize"]
