"""Abstract syntax tree for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of parsed expressions."""


@dataclass
class Literal(Expr):
    value: Any  # int, float, str, bool, None
    type_hint: str | None = None  # e.g. 'INTERVAL'


@dataclass
class ColumnRef(Expr):
    parts: tuple[str, ...]  # ('t', 'Trip') or ('Trip',)

    @property
    def column(self) -> str:
        return self.parts[-1]

    @property
    def qualifier(self) -> str | None:
        return self.parts[-2] if len(self.parts) > 1 else None


@dataclass
class Star(Expr):
    qualifier: str | None = None


@dataclass
class FunctionCall(Expr):
    name: str
    args: list[Expr]
    distinct: bool = False
    is_star: bool = False  # count(*)


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str  # '-', '+', 'NOT'
    operand: Expr


@dataclass
class Cast(Expr):
    operand: Expr
    type_name: str


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: list[Expr]
    negated: bool = False


@dataclass
class InSubquery(Expr):
    operand: Expr
    query: "SelectStatement"
    negated: bool = False


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False
    case_insensitive: bool = False


@dataclass
class Exists(Expr):
    query: "SelectStatement"
    negated: bool = False


@dataclass
class ScalarSubquery(Expr):
    query: "SelectStatement"


@dataclass
class QuantifiedComparison(Expr):
    op: str  # '<=', '=', ...
    operand: Expr
    quantifier: str  # 'ALL' | 'ANY'
    query: "SelectStatement"


@dataclass
class CaseExpr(Expr):
    operand: Expr | None
    branches: list[tuple[Expr, Expr]]
    else_result: Expr | None


@dataclass
class StructLiteral(Expr):
    """DuckDB struct literal ``{min_x: 1000, …}`` (used by the Fig. 2
    BOX_2D query)."""

    fields: list[tuple[str, Expr]]


@dataclass
class IntervalExpr(Expr):
    """``INTERVAL '1 day'`` or ``INTERVAL (expr)`` / ``INTERVAL (n || ' min')``."""

    operand: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class of parsed statements."""


@dataclass
class SelectItem:
    expr: Expr
    alias: str | None = None


class TableRef:
    """Base class of FROM items."""


@dataclass
class BaseTableRef(TableRef):
    name: str
    alias: str | None = None


@dataclass
class SubqueryRef(TableRef):
    query: "SelectStatement"
    alias: str
    column_aliases: list[str] | None = None


@dataclass
class TableFunctionRef(TableRef):
    name: str
    args: list[Expr]
    alias: str | None = None
    column_aliases: list[str] | None = None


@dataclass
class JoinRef(TableRef):
    left: TableRef
    right: TableRef
    join_type: str  # 'inner' | 'left' | 'cross'
    condition: Expr | None


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True
    nulls_first: bool | None = None


@dataclass
class CommonTableExpr:
    name: str
    column_names: list[str] | None
    query: "SelectStatement"


@dataclass
class SelectStatement(Statement):
    select_items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_items: list[TableRef] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Expr | None = None
    offset: Expr | None = None
    ctes: list[CommonTableExpr] = field(default_factory=list)


@dataclass
class CompoundSelect(Statement):
    """UNION / UNION ALL / EXCEPT / INTERSECT of two selects."""

    left: "SelectStatement | CompoundSelect"
    right: "SelectStatement | CompoundSelect"
    kind: str  # 'union' | 'except' | 'intersect'
    all: bool = False
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Expr | None = None
    offset: Expr | None = None
    ctes: list[CommonTableExpr] = field(default_factory=list)


@dataclass
class ColumnDef:
    name: str
    type_name: str


@dataclass
class CreateTableStatement(Statement):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    as_query: SelectStatement | None = None
    or_replace: bool = False
    if_not_exists: bool = False


@dataclass
class CreateIndexStatement(Statement):
    name: str
    table: str
    using: str  # index type name, e.g. 'TRTREE'
    column: str


@dataclass
class DropStatement(Statement):
    kind: str  # 'table' | 'index'
    name: str
    if_exists: bool = False


@dataclass
class InsertStatement(Statement):
    table: str
    columns: list[str] | None
    query: SelectStatement | None = None
    values: list[list[Expr]] | None = None


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Expr | None = None


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Expr | None = None


@dataclass
class ExplainStatement(Statement):
    inner: Statement
    analyze: bool = False


@dataclass
class AnalyzeStatement(Statement):
    """``ANALYZE [table]`` — collect per-column optimizer statistics
    (min/max, distinct count, null count, box-extent histograms) for one
    table, or for every table when no name is given."""

    table: str | None = None


@dataclass
class SetStatement(Statement):
    """``SET <name> = <value>`` / ``SET <name> TO <value>`` — session
    configuration (e.g. ``SET threads = 4``)."""

    name: str
    value: Expr


@dataclass
class ShowStatement(Statement):
    """``SHOW <name>`` — read back a session setting
    (e.g. ``SHOW threads``, ``SHOW log_min_duration``)."""

    name: str


@dataclass
class AttachStatement(Statement):
    """``ATTACH [DATABASE] '<path>'`` — bind an on-disk database file:
    an existing file loads immediately (tables decompress lazily), a
    new path becomes the ``CHECKPOINT`` target."""

    path: str


@dataclass
class CheckpointStatement(Statement):
    """``CHECKPOINT ['<path>']`` — write every table to the attached
    (or explicitly named) file in the columnar segment format."""

    path: str | None = None
