"""SQL lexer.

Produces a flat token stream; keywords are recognized case-insensitively at
parse time (any identifier token also carries its upper-cased form).  The
operator set includes the spatiotemporal operators MobilityDB/MobilityDuck
define (``&&``, ``@>``, ``<@``, ``<<``, ``>>``, ``-|-``) — in DuckDB these
are just scalar functions named by their symbol (paper §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParserError

# Longest first so that e.g. '<=' wins over '<'.
_OPERATORS = [
    "-|-",
    "::",
    "<=",
    ">=",
    "<>",
    "!=",
    "||",
    "&&",
    "@>",
    "<@",
    "<<",
    ">>",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "(",
    ")",
    ",",
    ".",
    ";",
    "{",
    "}",
    "[",
    "]",
    ":",
    "@",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'qident', 'number', 'string', 'op', 'eof'
    text: str
    pos: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise ParserError("unterminated block comment")
            i = end + 2
            continue
        if ch == "'":
            text, i = _scan_string(sql, i)
            tokens.append(Token("string", text, i))
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end < 0:
                raise ParserError("unterminated quoted identifier")
            tokens.append(Token("qident", sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = sql[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    sql[i + 1].isdigit()
                    or (sql[i + 1] in "+-" and i + 2 < n and sql[i + 2].isdigit())
                ):
                    seen_exp = True
                    i += 2 if sql[i + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token("number", sql[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            tokens.append(Token("ident", sql[start:i], start))
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                break
        else:
            raise ParserError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens


def _scan_string(sql: str, start: int) -> tuple[str, int]:
    """Scan a single-quoted string with '' escaping; returns (text, next)."""
    out: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise ParserError("unterminated string literal")
