"""Recursive-descent SQL parser for the subset the paper's workloads use.

Supported statements: SELECT (with CTEs, joins, grouping, ordering,
DISTINCT, correlated and quantified subqueries), INSERT, UPDATE, DELETE,
CREATE TABLE [AS], CREATE INDEX … USING …, DROP TABLE/INDEX, EXPLAIN.
"""

from __future__ import annotations


from ..errors import ParserError
from . import ast
from .lexer import Token, tokenize

_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "HAVING", "LIMIT",
    "OFFSET", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS",
    "AND", "OR", "NOT", "AS", "BY", "WITH", "UNION", "EXCEPT",
    "INTERSECT", "WHEN", "THEN", "ELSE", "END", "CASE", "USING",
    "DISTINCT", "ALL", "ASC", "DESC", "NULLS", "IN", "IS", "BETWEEN",
    "LIKE", "ILIKE", "EXISTS", "ANY", "SOME", "SET", "VALUES", "INTO",
}

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_CUSTOM_OPS = {"&&", "@>", "<@", "<<", ">>", "-|-"}


class Parser:
    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept_keyword(self, *words: str) -> bool:
        """Consume the given keyword sequence if present."""
        for i, word in enumerate(words):
            token = self.peek(i)
            if token.kind != "ident" or token.upper != word:
                return False
        self.pos += len(words)
        return True

    def expect_keyword(self, word: str) -> None:
        token = self.advance()
        if token.kind != "ident" or token.upper != word:
            raise ParserError(f"expected {word}, got {token.text!r}")

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == "op" and token.text == op:
            self.pos += 1
            return True
        return False

    def expect_op(self, op: str) -> None:
        token = self.advance()
        if token.kind != "op" or token.text != op:
            raise ParserError(f"expected {op!r}, got {token.text!r}")

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.upper == word

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind not in ("ident", "qident"):
            raise ParserError(f"expected identifier, got {token.text!r}")
        return token.text

    # -- entry points --------------------------------------------------------------

    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while self.peek().kind != "eof":
            statements.append(self.parse_statement())
            while self.accept_op(";"):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.kind != "ident":
            raise ParserError(f"unexpected token {token.text!r}")
        word = token.upper
        if word in ("SELECT", "WITH"):
            return self.parse_select()
        if word == "CREATE":
            return self._parse_create()
        if word == "INSERT":
            return self._parse_insert()
        if word == "UPDATE":
            return self._parse_update()
        if word == "DELETE":
            return self._parse_delete()
        if word == "DROP":
            return self._parse_drop()
        if word == "EXPLAIN":
            self.advance()
            analyze = bool(self.accept_keyword("ANALYZE"))
            return ast.ExplainStatement(self.parse_statement(), analyze)
        if word == "ANALYZE":
            return self._parse_analyze()
        if word == "SET":
            return self._parse_set()
        if word == "SHOW":
            return self._parse_show()
        if word == "ATTACH":
            return self._parse_attach()
        if word == "CHECKPOINT":
            return self._parse_checkpoint()
        raise ParserError(f"unsupported statement {token.text!r}")

    def _parse_attach(self) -> ast.AttachStatement:
        self.expect_keyword("ATTACH")
        self.accept_keyword("DATABASE")
        return ast.AttachStatement(self._expect_string("ATTACH"))

    def _parse_checkpoint(self) -> ast.CheckpointStatement:
        self.expect_keyword("CHECKPOINT")
        path = None
        if self.peek().kind == "string":
            path = self._expect_string("CHECKPOINT")
        return ast.CheckpointStatement(path)

    def _expect_string(self, context: str) -> str:
        token = self.advance()
        if token.kind != "string":
            raise ParserError(
                f"{context} expects a quoted file path, "
                f"got {token.text!r}"
            )
        return token.text

    def _parse_analyze(self) -> ast.AnalyzeStatement:
        self.expect_keyword("ANALYZE")
        table = None
        if self.peek().kind == "ident":
            table = self.expect_ident()
        return ast.AnalyzeStatement(table)

    def _parse_set(self) -> ast.SetStatement:
        self.expect_keyword("SET")
        name = self.expect_ident()
        if not self.accept_op("="):
            self.expect_keyword("TO")
        # ON/OFF are reserved words the expression parser rejects;
        # accept them here for toggles like ``SET cbo = on``.
        if self.accept_keyword("ON"):
            return ast.SetStatement(name, ast.Literal(True))
        if self.accept_keyword("OFF"):
            return ast.SetStatement(name, ast.Literal(False))
        return ast.SetStatement(name, self.parse_expression())

    def _parse_show(self) -> ast.ShowStatement:
        self.expect_keyword("SHOW")
        return ast.ShowStatement(self.expect_ident())

    # -- SELECT ---------------------------------------------------------------------

    def parse_select(self) -> ast.SelectStatement:
        ctes: list[ast.CommonTableExpr] = []
        if self.accept_keyword("WITH"):
            while True:
                name = self.expect_ident()
                column_names = None
                if self.accept_op("("):
                    column_names = [self.expect_ident()]
                    while self.accept_op(","):
                        column_names.append(self.expect_ident())
                    self.expect_op(")")
                self.expect_keyword("AS")
                self.expect_op("(")
                query = self.parse_select()
                self.expect_op(")")
                ctes.append(ast.CommonTableExpr(name, column_names, query))
                if not self.accept_op(","):
                    break
        stmt: "ast.SelectStatement | ast.CompoundSelect"
        stmt = self._parse_select_body()
        while True:
            if self.accept_keyword("UNION"):
                kind = "union"
            elif self.accept_keyword("EXCEPT"):
                kind = "except"
            elif self.accept_keyword("INTERSECT"):
                kind = "intersect"
            else:
                break
            all_flag = bool(self.accept_keyword("ALL"))
            self.accept_keyword("DISTINCT")
            right = self._parse_select_body()
            stmt = ast.CompoundSelect(stmt, right, kind, all_flag)
        order_by, limit, offset = self._parse_order_limit()
        stmt.order_by = order_by or stmt.order_by
        if limit is not None:
            stmt.limit = limit
        if offset is not None:
            stmt.offset = offset
        stmt.ctes = ctes
        return stmt

    def _parse_order_limit(self):
        order_by: list[ast.OrderItem] = []
        limit = offset = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.accept_op(","):
                order_by.append(self._parse_order_item())
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expression()
        if self.accept_keyword("OFFSET"):
            offset = self.parse_expression()
        return order_by, limit, offset

    def _parse_select_body(self) -> ast.SelectStatement:
        self.expect_keyword("SELECT")
        stmt = ast.SelectStatement()
        if self.accept_keyword("DISTINCT"):
            stmt.distinct = True
        elif self.accept_keyword("ALL"):
            pass
        stmt.select_items.append(self._parse_select_item())
        while self.accept_op(","):
            # Tolerate a trailing comma before FROM (appears in the paper's
            # use-case query 6).
            if self.at_keyword("FROM"):
                break
            stmt.select_items.append(self._parse_select_item())
        if self.accept_keyword("FROM"):
            stmt.from_items.append(self._parse_table_ref())
            while self.accept_op(","):
                stmt.from_items.append(self._parse_table_ref())
        if self.accept_keyword("WHERE"):
            stmt.where = self.parse_expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            stmt.group_by.append(self.parse_expression())
            while self.accept_op(","):
                stmt.group_by.append(self.parse_expression())
        if self.accept_keyword("HAVING"):
            stmt.having = self.parse_expression()
        # ORDER BY / LIMIT are parsed by the caller so that compound
        # (UNION/EXCEPT/INTERSECT) selects attach them to the whole.
        return stmt

    def _parse_select_item(self) -> ast.SelectItem:
        if self.peek().kind == "op" and self.peek().text == "*":
            self.advance()
            return ast.SelectItem(ast.Star())
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "qident" or (
            self.peek().kind == "ident" and self.peek().upper not in _RESERVED
        ):
            alias = self.advance().text
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self.accept_keyword("ASC"):
            ascending = True
        elif self.accept_keyword("DESC"):
            ascending = False
        nulls_first = None
        if self.accept_keyword("NULLS"):
            if self.accept_keyword("FIRST"):
                nulls_first = True
            elif self.accept_keyword("LAST"):
                nulls_first = False
            else:
                raise ParserError("expected FIRST or LAST after NULLS")
        return ast.OrderItem(expr, ascending, nulls_first)

    # -- FROM items --------------------------------------------------------------------

    def _parse_table_ref(self) -> ast.TableRef:
        ref = self._parse_table_primary()
        while True:
            join_type = None
            if self.accept_keyword("INNER", "JOIN") or self.accept_keyword(
                "JOIN"
            ):
                join_type = "inner"
            elif self.accept_keyword("LEFT", "OUTER", "JOIN") or (
                self.accept_keyword("LEFT", "JOIN")
            ):
                join_type = "left"
            elif self.accept_keyword("CROSS", "JOIN"):
                join_type = "cross"
            else:
                return ref
            right = self._parse_table_primary()
            condition = None
            if join_type != "cross":
                self.expect_keyword("ON")
                condition = self.parse_expression()
            ref = ast.JoinRef(ref, right, join_type, condition)

    def _parse_table_primary(self) -> ast.TableRef:
        if self.accept_op("("):
            query = self.parse_select()
            self.expect_op(")")
            alias, column_aliases = self._parse_table_alias(required=True)
            return ast.SubqueryRef(query, alias, column_aliases)
        name = self.expect_ident()
        if self.peek().kind == "op" and self.peek().text == "(":
            # Table function, e.g. generate_series(1, 1000) AS t(i)
            self.advance()
            args: list[ast.Expr] = []
            if not self.accept_op(")"):
                args.append(self.parse_expression())
                while self.accept_op(","):
                    args.append(self.parse_expression())
                self.expect_op(")")
            alias, column_aliases = self._parse_table_alias(required=False)
            return ast.TableFunctionRef(name, args, alias, column_aliases)
        alias, _ = self._parse_table_alias(required=False)
        return ast.BaseTableRef(name, alias)

    def _parse_table_alias(
        self, required: bool
    ) -> tuple[str | None, list[str] | None]:
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "qident" or (
            self.peek().kind == "ident" and self.peek().upper not in _RESERVED
        ):
            alias = self.advance().text
        if alias is None and required:
            raise ParserError("subquery in FROM requires an alias")
        column_aliases = None
        if alias is not None and self.peek().text == "(" and self._looks_like_column_aliases():
            self.advance()
            column_aliases = [self.expect_ident()]
            while self.accept_op(","):
                column_aliases.append(self.expect_ident())
            self.expect_op(")")
        return alias, column_aliases

    def _looks_like_column_aliases(self) -> bool:
        # alias(col [, col]*) — a '(' followed by identifiers and commas only.
        offset = 1
        if self.peek(offset).kind not in ("ident", "qident"):
            return False
        while True:
            if self.peek(offset).kind not in ("ident", "qident"):
                return False
            offset += 1
            token = self.peek(offset)
            if token.kind == "op" and token.text == ",":
                offset += 1
                continue
            if token.kind == "op" and token.text == ")":
                return True
            return False

    # -- other statements ---------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        or_replace = False
        if self.accept_keyword("OR"):
            self.expect_keyword("REPLACE")
            or_replace = True
        if self.accept_keyword("TABLE"):
            if_not_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("NOT")
                self.expect_keyword("EXISTS")
                if_not_exists = True
            name = self.expect_ident()
            if self.accept_keyword("AS"):
                query = self.parse_select()
                return ast.CreateTableStatement(
                    name, [], query, or_replace, if_not_exists
                )
            self.expect_op("(")
            columns = [self._parse_column_def()]
            while self.accept_op(","):
                columns.append(self._parse_column_def())
            self.expect_op(")")
            return ast.CreateTableStatement(
                name, columns, None, or_replace, if_not_exists
            )
        if self.accept_keyword("INDEX"):
            name = self.expect_ident()
            self.expect_keyword("ON")
            table = self.expect_ident()
            using = "BTREE"
            if self.accept_keyword("USING"):
                using = self.expect_ident()
            self.expect_op("(")
            column = self.expect_ident()
            self.expect_op(")")
            return ast.CreateIndexStatement(name, table, using, column)
        raise ParserError("expected TABLE or INDEX after CREATE")

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        type_name = self._parse_type_name()
        return ast.ColumnDef(name, type_name)

    def _parse_type_name(self) -> str:
        parts = [self.expect_ident()]
        # Multi-word types: DOUBLE PRECISION, TIMESTAMP WITH TIME ZONE.
        if parts[0].upper() == "DOUBLE" and self.at_keyword("PRECISION"):
            self.advance()
            parts.append("PRECISION")
        if parts[0].upper() == "TIMESTAMP" and self.at_keyword("WITH"):
            self.advance()
            self.expect_keyword("TIME")
            self.expect_keyword("ZONE")
            return "TIMESTAMPTZ"
        name = " ".join(parts)
        if self.peek().text == "(":
            # type modifiers, e.g. DECIMAL(10, 2) — parsed and ignored.
            self.advance()
            depth = 1
            mods = []
            while depth:
                token = self.advance()
                if token.kind == "eof":
                    raise ParserError("unterminated type modifier")
                if token.text == "(":
                    depth += 1
                elif token.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                mods.append(token.text)
            name = f"{name}({','.join(mods)})"
        return name

    def _parse_insert(self) -> ast.InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns = None
        if self.peek().text == "(" and self._looks_like_column_aliases():
            self.advance()
            columns = [self.expect_ident()]
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        if self.accept_keyword("VALUES"):
            rows: list[list[ast.Expr]] = []
            while True:
                self.expect_op("(")
                row = [self.parse_expression()]
                while self.accept_op(","):
                    row.append(self.parse_expression())
                self.expect_op(")")
                rows.append(row)
                if not self.accept_op(","):
                    break
            return ast.InsertStatement(table, columns, None, rows)
        query = self.parse_select()
        return ast.InsertStatement(table, columns, query, None)

    def _parse_update(self) -> ast.UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.expect_ident()
            self.expect_op("=")
            assignments.append((column, self.parse_expression()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.UpdateStatement(table, assignments, where)

    def _parse_delete(self) -> ast.DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.DeleteStatement(table, where)

    def _parse_drop(self) -> ast.DropStatement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            kind = "table"
        elif self.accept_keyword("INDEX"):
            kind = "index"
        else:
            raise ParserError("expected TABLE or INDEX after DROP")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.expect_ident()
        return ast.DropStatement(kind, name, if_exists)

    # -- expressions ----------------------------------------------------------------------
    #
    # Precedence (low to high): OR < AND < NOT < comparison/IS/IN/BETWEEN/
    # LIKE < custom ops (&&, @>, …) < || < +,- < *,/,% < unary < ::cast.

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_custom_op()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in _COMPARISON_OPS:
                op = self.advance().text
                if op == "!=":
                    op = "<>"
                if self.at_keyword("ALL") or self.at_keyword("ANY") or (
                    self.at_keyword("SOME")
                ):
                    quant = self.advance().upper
                    if quant == "SOME":
                        quant = "ANY"
                    self.expect_op("(")
                    query = self.parse_select()
                    self.expect_op(")")
                    left = ast.QuantifiedComparison(op, left, quant, query)
                else:
                    left = ast.BinaryOp(op, left, self._parse_custom_op())
                continue
            if token.kind == "ident":
                word = token.upper
                if word == "IS":
                    self.advance()
                    negated = bool(self.accept_keyword("NOT"))
                    self.expect_keyword("NULL")
                    left = ast.IsNull(left, negated)
                    continue
                if word == "NOT" and self.peek(1).kind == "ident" and (
                    self.peek(1).upper in ("IN", "BETWEEN", "LIKE", "ILIKE")
                ):
                    self.advance()
                    left = self._parse_postfix_predicate(left, negated=True)
                    continue
                if word in ("IN", "BETWEEN", "LIKE", "ILIKE"):
                    left = self._parse_postfix_predicate(left, negated=False)
                    continue
            break
        return left

    def _parse_postfix_predicate(self, left: ast.Expr, negated: bool) -> ast.Expr:
        token = self.advance()
        word = token.upper
        if word == "IN":
            self.expect_op("(")
            if self.at_keyword("SELECT") or self.at_keyword("WITH"):
                query = self.parse_select()
                self.expect_op(")")
                return ast.InSubquery(left, query, negated)
            items = [self.parse_expression()]
            while self.accept_op(","):
                items.append(self.parse_expression())
            self.expect_op(")")
            return ast.InList(left, items, negated)
        if word == "BETWEEN":
            low = self._parse_custom_op()
            self.expect_keyword("AND")
            high = self._parse_custom_op()
            return ast.Between(left, low, high, negated)
        if word in ("LIKE", "ILIKE"):
            pattern = self._parse_custom_op()
            return ast.Like(left, pattern, negated, word == "ILIKE")
        raise ParserError(f"unexpected predicate {word}")

    def _parse_custom_op(self) -> ast.Expr:
        left = self._parse_concat()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in _CUSTOM_OPS:
                op = self.advance().text
                left = ast.BinaryOp(op, left, self._parse_concat())
            else:
                return left

    def _parse_concat(self) -> ast.Expr:
        left = self._parse_additive()
        while self.accept_op("||"):
            left = ast.BinaryOp("||", left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                op = self.advance().text
                left = ast.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                op = self.advance().text
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "+"):
            self.advance()
            operand = self._parse_unary()
            if token.text == "-":
                return ast.UnaryOp("-", operand)
            return operand
        return self._parse_cast()

    def _parse_cast(self) -> ast.Expr:
        expr = self._parse_primary()
        while self.accept_op("::"):
            expr = ast.Cast(expr, self._parse_type_name())
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            if self.at_keyword("SELECT") or self.at_keyword("WITH"):
                query = self.parse_select()
                self.expect_op(")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expression()
            self.expect_op(")")
            return self._parse_postfix_cast(expr)
        if token.kind == "op" and token.text == "{":
            return self._parse_struct_literal()
        if token.kind == "op" and token.text == "*":
            self.advance()
            return ast.Star()
        if token.kind in ("ident", "qident"):
            return self._parse_identifier_expression()
        raise ParserError(f"unexpected token {token.text!r} in expression")

    def _parse_postfix_cast(self, expr: ast.Expr) -> ast.Expr:
        while self.accept_op("::"):
            expr = ast.Cast(expr, self._parse_type_name())
        return expr

    def _parse_struct_literal(self) -> ast.Expr:
        self.expect_op("{")
        fields: list[tuple[str, ast.Expr]] = []
        if not self.accept_op("}"):
            while True:
                key = self.expect_ident()
                self.expect_op(":")
                fields.append((key, self.parse_expression()))
                if not self.accept_op(","):
                    break
            self.expect_op("}")
        return ast.StructLiteral(fields)

    def _parse_identifier_expression(self) -> ast.Expr:
        token = self.advance()
        word = token.upper if token.kind == "ident" else None
        if word == "NULL":
            return ast.Literal(None)
        if word == "TRUE":
            return ast.Literal(True)
        if word == "FALSE":
            return ast.Literal(False)
        if word == "CASE":
            return self._parse_case()
        if word == "EXISTS" and self.peek().text == "(":
            self.advance()
            query = self.parse_select()
            self.expect_op(")")
            return ast.Exists(query)
        if word == "CAST" and self.peek().text == "(":
            self.advance()
            operand = self.parse_expression()
            self.expect_keyword("AS")
            type_name = self._parse_type_name()
            self.expect_op(")")
            return ast.Cast(operand, type_name)
        if word == "INTERVAL":
            nxt = self.peek()
            if nxt.kind == "string":
                self.advance()
                return ast.IntervalExpr(ast.Literal(nxt.text))
            if nxt.kind == "op" and nxt.text == "(":
                self.advance()
                inner = self.parse_expression()
                self.expect_op(")")
                return ast.IntervalExpr(inner)
        if word in ("DATE", "TIMESTAMP", "TIMESTAMPTZ") and (
            self.peek().kind == "string"
        ):
            literal = self.advance()
            return ast.Cast(ast.Literal(literal.text), word)
        if token.kind == "ident" and word in _RESERVED and not (
            self.peek().kind == "op" and self.peek().text == "("
        ):
            raise ParserError(
                f"unexpected keyword {word} in expression"
            )
        # Typed literal for user types, e.g. stbox 'STBOX X(...)',
        # tgeompoint '[...]', geomset 'SRID=...;{...}'.
        if token.kind == "ident" and self.peek().kind == "string":
            literal = self.advance()
            return ast.Cast(ast.Literal(literal.text), token.text)
        # Function call?
        if self.peek().kind == "op" and self.peek().text == "(":
            return self._parse_function_call(token.text)
        # Column reference (possibly qualified, possibly ending in .*)
        parts = [token.text]
        while self.accept_op("."):
            nxt = self.peek()
            if nxt.kind == "op" and nxt.text == "*":
                self.advance()
                return ast.Star(qualifier=parts[-1])
            parts.append(self.expect_ident())
            if self.peek().text == "(" and self.peek().kind == "op":
                # schema-qualified function call; use last part as name
                return self._parse_function_call(parts[-1])
        return ast.ColumnRef(tuple(parts))

    def _parse_function_call(self, name: str) -> ast.Expr:
        self.expect_op("(")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        if self.peek().text == "*" and self.peek().kind == "op":
            self.advance()
            self.expect_op(")")
            return self._parse_postfix_cast(
                ast.FunctionCall(name, [], distinct, is_star=True)
            )
        args: list[ast.Expr] = []
        if not self.accept_op(")"):
            args.append(self.parse_expression())
            while self.accept_op(","):
                args.append(self.parse_expression())
            self.expect_op(")")
        return self._parse_postfix_cast(
            ast.FunctionCall(name, args, distinct)
        )

    def _parse_case(self) -> ast.Expr:
        operand = None
        if not self.at_keyword("WHEN"):
            operand = self.parse_expression()
        branches: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expression()
            self.expect_keyword("THEN")
            result = self.parse_expression()
            branches.append((cond, result))
        else_result = None
        if self.accept_keyword("ELSE"):
            else_result = self.parse_expression()
        self.expect_keyword("END")
        return ast.CaseExpr(operand, branches, else_result)


def parse_sql(sql: str) -> list[ast.Statement]:
    """Parse a SQL script into a list of statements."""
    return Parser(sql).parse_statements()


def parse_one(sql: str) -> ast.Statement:
    """Parse exactly one statement."""
    statements = parse_sql(sql)
    if len(statements) != 1:
        raise ParserError(f"expected one statement, got {len(statements)}")
    return statements[0]
