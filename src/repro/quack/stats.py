"""Table statistics and selectivity estimation (``ANALYZE`` support).

``analyze_table`` makes one pass over a table and distills, per column:
null count, an approximate distinct count, min/max, an equi-width
histogram over the numeric image of the values (numbers and timestamps),
and — for spatial/temporal columns whose values carry a bounding box
(STBox, TBox, temporal points) — per-dimension extent histograms of the
box centers plus the mean half-width.

The ``*_selectivity`` functions turn those summaries into predicate
selectivities for the cost-based optimizer.  Every estimator returns a
value clamped to ``[0, 1]`` via :func:`clamp01` (enforced by lint rule
ANL010): a selectivity outside the unit interval silently corrupts every
cardinality product built on top of it.

The module is engine-neutral on purpose: box extraction is duck-typed
(``xmin``/``tspan`` attributes, a ``stbox()`` method) rather than
``isinstance``-checked against ``repro.meos`` classes, so pgsim row
tables analyze identically through the shared frontend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: Number of equi-width buckets in value and box-center histograms.
HISTOGRAM_BUCKETS = 32

#: Distinct-value sets are exact up to this cap; beyond it the count is
#: linearly extrapolated from the observed fill rate (approximate NDV).
NDV_EXACT_CAP = 65536

#: Fallback selectivities when a column has no usable statistics.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_OVERLAP_SELECTIVITY = 0.05
DEFAULT_CONTAINS_SELECTIVITY = 0.01
DEFAULT_RESIDUAL_SELECTIVITY = 0.25


def clamp01(value: float) -> float:
    """Clamp a selectivity into ``[0, 1]`` (NaN becomes the midpoint)."""
    value = float(value)
    if value != value:  # NaN
        return 0.5
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


# ---------------------------------------------------------------------------
# Statistics containers
# ---------------------------------------------------------------------------


@dataclass
class NumericHistogram:
    """Equi-width histogram over ``[lo, hi]`` with interpolated lookups."""

    lo: float
    hi: float
    counts: list[int]
    total: int

    def fraction_leq(self, value: float) -> float:
        """Fraction of observations ``<= value`` (linear inside buckets)."""
        if self.total <= 0:
            return 0.5
        if value < self.lo:
            return 0.0
        if value >= self.hi:
            return 1.0
        width = (self.hi - self.lo) / len(self.counts)
        if width <= 0.0:
            return 1.0
        position = (value - self.lo) / width
        bucket = min(int(position), len(self.counts) - 1)
        below = sum(self.counts[:bucket])
        inside = self.counts[bucket] * (position - bucket)
        return (below + inside) / self.total

    def fraction_between(self, low: float, high: float) -> float:
        if high < low:
            return 0.0
        return max(0.0, self.fraction_leq(high) - self.fraction_leq(low))


@dataclass
class DimensionStats:
    """One spatial/temporal axis of a box-valued column."""

    lo: float
    hi: float
    center_histogram: NumericHistogram
    mean_half_width: float


@dataclass
class ColumnStats:
    name: str
    row_count: int = 0
    null_count: int = 0
    distinct_count: int = 0
    min_value: Any = None
    max_value: Any = None
    #: histogram over the numeric image of the values (numbers,
    #: timestamps); ``None`` when the column has no numeric image
    histogram: NumericHistogram | None = None
    #: per-axis extent statistics for box-valued columns ('x'/'y'/'t')
    box_dimensions: dict[str, DimensionStats] = field(default_factory=dict)
    #: how many non-null values yielded a bounding box
    box_count: int = 0

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count

    def null_fraction(self) -> float:
        if self.row_count <= 0:
            return 0.0
        return self.null_count / self.row_count


@dataclass
class TableStats:
    """What ``ANALYZE`` stores on ``Table.stats``."""

    table_name: str
    row_count: int
    columns: list[ColumnStats]

    def column(self, index: int) -> ColumnStats | None:
        if 0 <= index < len(self.columns):
            return self.columns[index]
        return None


# ---------------------------------------------------------------------------
# Value coercion (duck-typed, engine-neutral)
# ---------------------------------------------------------------------------


def as_number(value: Any) -> float | None:
    """The numeric image of a value: numbers as-is, datetimes as epoch
    seconds, everything else ``None``."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    timestamp = getattr(value, "timestamp", None)
    if callable(timestamp):
        try:
            return float(timestamp())
        except Exception:
            return None
    return None


def box_of(value: Any) -> Any | None:
    """Extract a bounding box from a value, duck-typed.

    Accepts STBox/TBox-shaped objects directly (``has_x``/``has_t``
    properties) and temporal values exposing an ``stbox()`` method.
    Returns ``None`` when the value carries no box.
    """
    if value is None:
        return None
    if hasattr(value, "has_x") and hasattr(value, "has_t"):
        return value
    stbox = getattr(value, "stbox", None)
    if callable(stbox):
        try:
            return stbox()
        except Exception:
            return None
    return None


def box_intervals(box: Any) -> dict[str, tuple[float, float]]:
    """The per-axis ``[lo, hi]`` intervals of a bounding box.

    Axes: ``x``/``y`` (STBox spatial corners, or a TBox value span on
    ``x``), ``t`` (time span as epoch seconds).  Missing axes are simply
    absent from the result.
    """
    intervals: dict[str, tuple[float, float]] = {}
    xmin = getattr(box, "xmin", None)
    if xmin is not None:
        intervals["x"] = (float(xmin), float(box.xmax))
        ymin = getattr(box, "ymin", None)
        if ymin is not None:
            intervals["y"] = (float(ymin), float(box.ymax))
    vspan = getattr(box, "vspan", None)
    if vspan is not None and "x" not in intervals:
        lo = as_number(vspan.lower)
        hi = as_number(vspan.upper)
        if lo is not None and hi is not None:
            intervals["x"] = (lo, hi)
    tspan = getattr(box, "tspan", None)
    if tspan is not None:
        lo = as_number(tspan.lower)
        hi = as_number(tspan.upper)
        if lo is not None and hi is not None:
            intervals["t"] = (lo, hi)
    return intervals


# ---------------------------------------------------------------------------
# ANALYZE: one pass over the table
# ---------------------------------------------------------------------------


class _ColumnAccumulator:
    def __init__(self, name: str):
        self.name = name
        self.rows = 0
        self.nulls = 0
        self.seen: set[Any] = set()
        self.seen_overflowed = False
        self.non_nulls_at_cap = 0
        self.numbers: list[float] = []
        self.min_value: Any = None
        self.max_value: Any = None
        self.box_centers: dict[str, list[float]] = {}
        self.box_half_widths: dict[str, list[float]] = {}
        self.box_count = 0

    def observe(self, value: Any) -> None:
        self.rows += 1
        if value is None:
            self.nulls += 1
            return
        if not self.seen_overflowed:
            try:
                key = value if value.__hash__ is not None else repr(value)
            except Exception:
                key = repr(value)
            self.seen.add(key)
            if len(self.seen) >= NDV_EXACT_CAP:
                self.seen_overflowed = True
                self.non_nulls_at_cap = self.rows - self.nulls
        number = as_number(value)
        if number is not None:
            self.numbers.append(number)
        self._observe_order(value)
        box = box_of(value)
        if box is not None:
            self.box_count += 1
            for axis, (lo, hi) in box_intervals(box).items():
                self.box_centers.setdefault(axis, []).append((lo + hi) / 2.0)
                self.box_half_widths.setdefault(axis, []).append(
                    (hi - lo) / 2.0
                )

    def _observe_order(self, value: Any) -> None:
        try:
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value
        except TypeError:
            pass  # unorderable mix; min/max stay best-effort

    def finish(self) -> ColumnStats:
        distinct = len(self.seen)
        non_null = self.rows - self.nulls
        if self.seen_overflowed and self.non_nulls_at_cap > 0:
            # The set stopped growing at the cap after some prefix of
            # the rows; extrapolate the fill rate to the full table.
            distinct = min(
                non_null,
                int(distinct * non_null / self.non_nulls_at_cap),
            )
        dims = {}
        for axis, centers in self.box_centers.items():
            histogram = _build_histogram(centers)
            if histogram is None:
                continue
            widths = self.box_half_widths[axis]
            dims[axis] = DimensionStats(
                lo=min(centers) - max(widths),
                hi=max(centers) + max(widths),
                center_histogram=histogram,
                mean_half_width=sum(widths) / len(widths),
            )
        return ColumnStats(
            name=self.name,
            row_count=self.rows,
            null_count=self.nulls,
            distinct_count=distinct,
            min_value=self.min_value,
            max_value=self.max_value,
            histogram=_build_histogram(self.numbers),
            box_dimensions=dims,
            box_count=self.box_count,
        )


def _build_histogram(values: list[float]) -> NumericHistogram | None:
    if not values:
        return None
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return NumericHistogram(lo, hi, [len(values)], len(values))
    counts = [0] * HISTOGRAM_BUCKETS
    width = (hi - lo) / HISTOGRAM_BUCKETS
    for v in values:
        bucket = min(int((v - lo) / width), HISTOGRAM_BUCKETS - 1)
        counts[bucket] += 1
    return NumericHistogram(lo, hi, counts, len(values))


def _detoast(value: Any) -> Any:
    """Unwrap a row-engine varlena datum (duck-typed so quack does not
    import pgsim); inline values pass through."""
    load = getattr(value, "load", None)
    if callable(load) and hasattr(value, "blob"):
        return load()
    return value


def _iter_rows(table: Any) -> Iterator[tuple]:
    scan = getattr(table, "scan", None)
    if callable(scan):
        for first, second in scan():
            rows = getattr(first, "rows", None)
            if callable(rows):
                # Columnar engine: scan() yields (DataChunk, row_ids).
                yield from rows()
            else:
                # Row engine: scan() yields (row_id, heap row) whose
                # heavy datums are TOASTed.
                yield tuple(_detoast(value) for value in second)
        return
    yield from getattr(table, "rows")


def analyze_table(table: Any) -> TableStats:
    """One full pass over ``table``; returns the statistics to store on
    ``table.stats``."""
    accumulators = [
        _ColumnAccumulator(name) for name in table.column_names
    ]
    row_count = 0
    for row in _iter_rows(table):
        row_count += 1
        for accumulator, value in zip(accumulators, row):
            accumulator.observe(value)
    return TableStats(
        table_name=getattr(table, "name", "?"),
        row_count=row_count,
        columns=[a.finish() for a in accumulators],
    )


# ---------------------------------------------------------------------------
# Selectivity estimators (every return clamped — lint ANL010)
# ---------------------------------------------------------------------------


def comparison_selectivity(stats: ColumnStats | None, op_name: str,
                           constant: Any) -> float:
    """Selectivity of ``column <op> constant`` for =, !=, <, <=, >, >=."""
    if stats is None or stats.non_null_count <= 0:
        return clamp01(default_selectivity(op_name))
    if op_name == "=":
        if stats.distinct_count > 0:
            return clamp01(1.0 / stats.distinct_count)
        return clamp01(DEFAULT_EQ_SELECTIVITY)
    if op_name in ("!=", "<>"):
        if stats.distinct_count > 0:
            return clamp01(1.0 - 1.0 / stats.distinct_count)
        return clamp01(1.0 - DEFAULT_EQ_SELECTIVITY)
    number = as_number(constant)
    if number is None or stats.histogram is None:
        return clamp01(default_selectivity(op_name))
    below = stats.histogram.fraction_leq(number)
    if op_name in ("<", "<="):
        return clamp01(below)
    if op_name in (">", ">="):
        return clamp01(1.0 - below)
    return clamp01(default_selectivity(op_name))


def between_selectivity(stats: ColumnStats | None, low: Any,
                        high: Any) -> float:
    """Selectivity of ``column BETWEEN low AND high``."""
    lo = as_number(low)
    hi = as_number(high)
    if (stats is None or stats.histogram is None
            or lo is None or hi is None):
        return clamp01(DEFAULT_RANGE_SELECTIVITY)
    return clamp01(stats.histogram.fraction_between(lo, hi))


def overlap_selectivity(stats: ColumnStats | None, probe: Any) -> float:
    """Selectivity of ``column && probe`` (also the eIntersects bounding
    box prefilter): per shared axis, the fraction of box centers within
    the probe interval expanded by the mean half-width, multiplied under
    an independence assumption."""
    box = box_of(probe)
    if stats is None or box is None or not stats.box_dimensions:
        return clamp01(DEFAULT_OVERLAP_SELECTIVITY)
    probe_intervals = box_intervals(box)
    fraction = 1.0
    shared = False
    for axis, dim in stats.box_dimensions.items():
        interval = probe_intervals.get(axis)
        if interval is None:
            continue
        shared = True
        lo, hi = interval
        fraction *= dim.center_histogram.fraction_between(
            lo - dim.mean_half_width, hi + dim.mean_half_width
        )
    if not shared:
        return clamp01(DEFAULT_OVERLAP_SELECTIVITY)
    return clamp01(max(fraction, _floor(stats)))


def containment_selectivity(stats: ColumnStats | None, probe: Any,
                            column_contains_probe: bool) -> float:
    """Selectivity of ``column @> probe`` (``column_contains_probe``)
    or ``column <@ probe``: the center must sit in the interval where a
    mean-width box satisfies the containment on every shared axis."""
    box = box_of(probe)
    if stats is None or box is None or not stats.box_dimensions:
        return clamp01(DEFAULT_CONTAINS_SELECTIVITY)
    probe_intervals = box_intervals(box)
    fraction = 1.0
    shared = False
    for axis, dim in stats.box_dimensions.items():
        interval = probe_intervals.get(axis)
        if interval is None:
            continue
        shared = True
        lo, hi = interval
        half = dim.mean_half_width
        if column_contains_probe:
            window = (hi - half, lo + half)
        else:
            window = (lo + half, hi - half)
        fraction *= dim.center_histogram.fraction_between(*window)
    if not shared:
        return clamp01(DEFAULT_CONTAINS_SELECTIVITY)
    return clamp01(max(fraction, _floor(stats)))


def equi_join_selectivity(left: ColumnStats | None,
                          right: ColumnStats | None) -> float:
    """Selectivity of ``left_col = right_col`` over the cross product:
    the classic ``1 / max(ndv_left, ndv_right)``."""
    ndvs = [
        s.distinct_count
        for s in (left, right)
        if s is not None and s.distinct_count > 0
    ]
    if not ndvs:
        return clamp01(DEFAULT_EQ_SELECTIVITY)
    return clamp01(1.0 / max(ndvs))


def default_selectivity(op_name: str) -> float:
    """Fallback selectivity when no statistics apply to a predicate."""
    if op_name == "=":
        return clamp01(DEFAULT_EQ_SELECTIVITY)
    if op_name in ("!=", "<>"):
        return clamp01(1.0 - DEFAULT_EQ_SELECTIVITY)
    if op_name in ("<", "<=", ">", ">="):
        return clamp01(DEFAULT_RANGE_SELECTIVITY)
    if op_name in ("&&",):
        return clamp01(DEFAULT_OVERLAP_SELECTIVITY)
    if op_name in ("@>", "<@"):
        return clamp01(DEFAULT_CONTAINS_SELECTIVITY)
    return clamp01(DEFAULT_RESIDUAL_SELECTIVITY)


def _floor(stats: ColumnStats) -> float:
    """A one-row floor so estimates never collapse to exactly zero."""
    return 1.0 / max(stats.row_count, 1)
