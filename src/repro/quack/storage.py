"""Persistent columnar storage: compressed segments, zone maps, spill files.

The on-disk format (``*.quackdb``) is a single file::

    +----------+---------------------------+-------------+----------------+
    | magic(8) | segment blobs, back to    | JSON footer | footer offset  |
    | QUACKDB2 | back (payload + validity) |             | (u64) magic(8) |
    +----------+---------------------------+-------------+----------------+

Rows are re-chunked into fixed-size **row groups** (default
:data:`repro.quack.vector.STANDARD_VECTOR_SIZE` rows).  Each column of a
row group is one encoded *segment*: dictionary encoding for text, delta
(frame-of-reference) encoding for int64 payloads — which covers
``TIMESTAMP``/``DATE``, both epoch-integer physicals — bit-packed
booleans, raw float64 bytes, and a zlib-pickled fallback for extension
payloads (temporal points, boxes).  Validity is a separate packed bitmap
per segment, elided when all rows are valid.

The JSON footer carries the format version, schema, index definitions,
per-segment byte offsets, and a per-row-group **zone map** per column:
min/max over the numeric image (:func:`repro.quack.stats.as_number`),
string bounds for text, null counts, and per-axis bounding-box extents
for spatial/temporal columns.  Scans with pushed-down conjuncts consult
the zone maps (see :func:`zone_map_prunes`) and skip non-qualifying row
groups *before* decompression; readers are lazily materialized
memory-mapped :class:`StorageColumn` segments, so a skipped group is
never decoded.

The same module owns the **spill files** used by the spillable operators
(external sort runs, grace hash-join partitions, aggregation partials)
and the :func:`open_path` seam: lint rule ANL011 confines all file I/O
inside ``repro.quack`` to this module.
"""

from __future__ import annotations

import json
import mmap
import pickle
import struct
import tempfile
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..analysis.config import verification_enabled
from ..analysis.errors import VerificationError
from ..observability import count
from .catalog import ColumnData, Table
from .errors import QuackError
from .stats import (
    HISTOGRAM_BUCKETS,
    ColumnStats,
    DimensionStats,
    NumericHistogram,
    TableStats,
    as_number,
    box_intervals,
    box_of,
)
from .types import LogicalType
from .vector import STANDARD_VECTOR_SIZE, Vector

#: Current on-disk format version.  Readers reject anything newer; the
#: ``quackdb-v1`` pickle format is still readable through a shim for one
#: release (see :func:`_read_legacy_pickle`).
FORMAT_VERSION = 2

_MAGIC = b"QUACKDB2"
_TRAILER_SIZE = 8 + len(_MAGIC)  # u64 footer offset + magic echo

#: Rows per on-disk row group — matches the execution vector size so one
#: decoded segment is exactly one scan chunk.
ROW_GROUP_SIZE = STANDARD_VECTOR_SIZE

#: Flat per-slot estimate for object payloads when sizing working sets
#: against ``SET memory_limit`` (exact byte accounting of extension
#: objects would require walking them).
_OBJECT_SLOT_BYTES = 64

_DELTA_WIDTHS = (np.int8, np.int16, np.int32, np.int64)
_CODE_WIDTHS = (np.uint8, np.uint16, np.uint32)

_COMPARISON_OPS = frozenset(("<", "<=", ">", ">=", "="))
#: Overlap-style box predicates: ``col && probe`` and ``col <@ probe``
#: both require the column box to intersect the probe box, as does the
#: eIntersects/aIntersects bounding-box prefilter.
_OVERLAP_OPS = frozenset(("&&", "<@", "eintersects", "aintersects",
                          "intersects"))
_CONTAINS_OPS = frozenset(("@>",))

#: Every conjunct shape the zone maps understand (optimizer-side gate).
PRUNABLE_OPS = _COMPARISON_OPS | _OVERLAP_OPS | _CONTAINS_OPS


def open_path(path: str, mode: str = "r", **kwargs: Any):
    """The file-access seam for ``repro.quack`` (lint rule ANL011): every
    module except this one must route file I/O through here so persistence
    concerns stay in one place."""
    return open(path, mode, **kwargs)


# ---------------------------------------------------------------------------
# Segment codecs
# ---------------------------------------------------------------------------


def encode_validity(validity: np.ndarray) -> bytes:
    """Packed validity bitmap; empty bytes when every row is valid."""
    if validity.all():
        return b""
    return np.packbits(validity.astype(np.bool_)).tobytes()


def decode_validity(payload: bytes, rows: int) -> np.ndarray:
    if not payload:
        return np.ones(rows, dtype=np.bool_)
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=rows)
    return bits.astype(np.bool_)


def encode_segment(vector: Vector) -> tuple[str, bytes, dict]:
    """Encode one segment; returns ``(codec, payload, meta)``."""
    physical = vector.ltype.physical
    data = vector.data
    if physical == "bool":
        return "bitpack", np.packbits(data.astype(np.bool_)).tobytes(), {}
    if physical == "int64":
        values = data.astype(np.int64, copy=False)
        if len(values) == 0:
            return "delta", b"", {"first": 0, "width": "int64"}
        first = int(values[0])
        deltas = np.diff(values)
        width = _DELTA_WIDTHS[-1]
        if deltas.size:
            lo, hi = int(deltas.min()), int(deltas.max())
            for candidate in _DELTA_WIDTHS:
                info = np.iinfo(candidate)
                if info.min <= lo and hi <= info.max:
                    width = candidate
                    break
        else:
            width = _DELTA_WIDTHS[0]
        return "delta", deltas.astype(width).tobytes(), {
            "first": first,
            "width": np.dtype(width).name,
        }
    if physical == "float64":
        return "raw", data.astype(np.float64, copy=False).tobytes(), {}
    # Object payloads: dictionary-encode when the segment is pure text,
    # otherwise fall back to a zlib-compressed pickle.
    values = [data[i] if vector.validity[i] else None
              for i in range(len(data))]
    present = [v for v in values if v is not None]
    if all(isinstance(v, str) for v in present):
        uniques = sorted(set(present))
        mapping = {v: i for i, v in enumerate(uniques)}
        codes = np.fromiter(
            (mapping[v] if v is not None else 0 for v in values),
            dtype=np.int64,
            count=len(values),
        )
        width = _CODE_WIDTHS[-1]
        for candidate in _CODE_WIDTHS:
            if len(uniques) <= np.iinfo(candidate).max + 1:
                width = candidate
                break
        dict_blob = json.dumps(uniques, ensure_ascii=False).encode("utf-8")
        return "dict", dict_blob + codes.astype(width).tobytes(), {
            "dict_bytes": len(dict_blob),
            "width": np.dtype(width).name,
            "cardinality": len(uniques),
        }
    return "pickle", zlib.compress(
        pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
    ), {}


def decode_segment(codec: str, payload: bytes, meta: dict, rows: int,
                   ltype: LogicalType) -> np.ndarray:
    """Inverse of :func:`encode_segment`."""
    if codec == "bitpack":
        if rows == 0:
            return np.zeros(0, dtype=np.bool_)
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8),
                             count=rows)
        return bits.astype(np.bool_)
    if codec == "delta":
        out = np.empty(rows, dtype=np.int64)
        if rows == 0:
            return out
        out[0] = int(meta["first"])
        if rows > 1:
            deltas = np.frombuffer(payload, dtype=np.dtype(meta["width"]),
                                   count=rows - 1)
            out[1:] = out[0] + np.cumsum(deltas, dtype=np.int64)
        return out
    if codec == "raw":
        return np.frombuffer(payload, dtype=np.float64, count=rows)
    if codec == "dict":
        dict_bytes = int(meta["dict_bytes"])
        uniques = json.loads(bytes(payload[:dict_bytes]).decode("utf-8"))
        out = np.empty(rows, dtype=object)
        if rows == 0:
            return out
        if not uniques:
            return out  # all-NULL segment: validity masks every slot
        codes = np.frombuffer(payload[dict_bytes:],
                              dtype=np.dtype(meta["width"]), count=rows)
        lookup = np.empty(len(uniques), dtype=object)
        for i, value in enumerate(uniques):
            lookup[i] = value
        return lookup[codes.astype(np.int64)]
    if codec == "pickle":
        values = pickle.loads(zlib.decompress(bytes(payload)))
        out = np.empty(rows, dtype=object)
        for i, value in enumerate(values):
            out[i] = value
        return out
    raise QuackError(f"unknown segment codec {codec!r}")


# ---------------------------------------------------------------------------
# Zone maps
# ---------------------------------------------------------------------------


@dataclass
class ZoneMapEntry:
    """Per-row-group, per-column pruning summary.

    Bounds are only usable when the matching ``*_complete`` flag is set —
    it records that *every* non-null value in the group contributed, so a
    disjoint range proves the group holds no match.  NaNs count as
    numeric (a NaN never satisfies a comparison) but stay out of the
    bounds.
    """

    rows: int
    nulls: int
    lo: float | None = None
    hi: float | None = None
    slo: str | None = None
    shi: str | None = None
    box: dict[str, tuple[float, float]] | None = None
    numeric_complete: bool = False
    string_complete: bool = False
    box_complete: bool = False
    distinct: int | None = None

    @property
    def non_null(self) -> int:
        return self.rows - self.nulls

    def to_json(self) -> dict:
        out: dict[str, Any] = {"r": self.rows, "n": self.nulls}
        if self.numeric_complete:
            out["lo"], out["hi"], out["nc"] = self.lo, self.hi, True
        if self.string_complete:
            out["slo"], out["shi"], out["sc"] = self.slo, self.shi, True
        if self.box_complete:
            out["box"] = {axis: list(iv) for axis, iv in
                          (self.box or {}).items()}
            out["bc"] = True
        if self.distinct is not None:
            out["d"] = self.distinct
        return out

    @classmethod
    def from_json(cls, raw: dict) -> "ZoneMapEntry":
        box = raw.get("box")
        return cls(
            rows=int(raw["r"]),
            nulls=int(raw["n"]),
            lo=raw.get("lo"),
            hi=raw.get("hi"),
            slo=raw.get("slo"),
            shi=raw.get("shi"),
            box={axis: (float(iv[0]), float(iv[1]))
                 for axis, iv in box.items()} if box else None,
            numeric_complete=bool(raw.get("nc")),
            string_complete=bool(raw.get("sc")),
            box_complete=bool(raw.get("bc")),
            distinct=raw.get("d"),
        )


def compute_zone_entry(vector: Vector) -> ZoneMapEntry:
    """One pass over a sealed segment: bounds, null count, box extents."""
    rows = len(vector)
    nulls = int(np.count_nonzero(~vector.validity))
    lo = hi = None
    slo = shi = None
    strings: set[str] | None = set()
    n_num = n_str = n_box = 0
    axes: dict[str, tuple[float, float]] = {}
    axis_hits: dict[str, int] = {}
    for i in range(rows):
        value = vector.value(i)
        if value is None:
            continue
        number = as_number(value)
        if number is not None:
            n_num += 1
            if number == number:  # NaN never matches a comparison
                lo = number if lo is None else min(lo, number)
                hi = number if hi is None else max(hi, number)
            continue
        if isinstance(value, str):
            n_str += 1
            slo = value if slo is None or value < slo else slo
            shi = value if shi is None or value > shi else shi
            if strings is not None:
                strings.add(value)
            continue
        box = box_of(value)
        if box is not None:
            intervals = box_intervals(box)
            if intervals:
                n_box += 1
                for axis, (alo, ahi) in intervals.items():
                    known = axes.get(axis)
                    if known is None:
                        axes[axis] = (alo, ahi)
                    else:
                        axes[axis] = (min(known[0], alo), max(known[1], ahi))
                    axis_hits[axis] = axis_hits.get(axis, 0) + 1
    non_null = rows - nulls
    # Only axes every boxed value contributed to are sound for pruning:
    # a value without a ``t`` span is unconstrained on ``t``.
    axes = {axis: iv for axis, iv in axes.items()
            if axis_hits.get(axis, 0) == n_box}
    return ZoneMapEntry(
        rows=rows,
        nulls=nulls,
        lo=lo,
        hi=hi,
        slo=slo,
        shi=shi,
        box=axes or None,
        numeric_complete=non_null > 0 and n_num == non_null,
        string_complete=non_null > 0 and n_str == non_null,
        box_complete=non_null > 0 and n_box == non_null,
        distinct=len(strings) if strings is not None and n_str == non_null
        and non_null > 0 else None,
    )


def zone_map_prunes(entry: ZoneMapEntry, op_name: str,
                    constant: Any) -> bool:
    """``True`` when the zone map *proves* no row in the group satisfies
    ``column <op> constant`` — the conservative default is ``False``
    (cannot prune)."""
    if entry.rows == 0:
        return True
    op = op_name.lower() if op_name not in _COMPARISON_OPS else op_name
    if op in _COMPARISON_OPS:
        if entry.non_null == 0:
            return True  # comparisons are never true against NULL
        if isinstance(constant, str):
            if not entry.string_complete or entry.slo is None:
                return False
            return _range_prunes(op, entry.slo, entry.shi, constant)
        probe = as_number(constant)
        if probe is None or probe != probe:
            return False
        if not entry.numeric_complete or entry.lo is None:
            return False
        return _range_prunes(op, entry.lo, entry.hi, probe)
    if op in _OVERLAP_OPS or op in _CONTAINS_OPS:
        if entry.non_null == 0:
            return True
        if not entry.box_complete or not entry.box:
            return False
        box = box_of(constant)
        if box is None:
            return False
        probe_intervals = box_intervals(box)
        for axis, (plo, phi) in probe_intervals.items():
            extent = entry.box.get(axis)
            if extent is None:
                continue
            if op in _CONTAINS_OPS:
                # column @> probe: every column box lies inside the
                # group extent, so an extent that cannot cover the probe
                # proves no single box can.
                if plo < extent[0] or phi > extent[1]:
                    return True
            else:
                if phi < extent[0] or plo > extent[1]:
                    return True
        return False
    return False


def _range_prunes(op: str, lo: Any, hi: Any, probe: Any) -> bool:
    if op == "<":
        return lo >= probe
    if op == "<=":
        return lo > probe
    if op == ">":
        return hi <= probe
    if op == ">=":
        return hi < probe
    return probe < lo or probe > hi  # "="


# ---------------------------------------------------------------------------
# Lazily-decoded storage columns
# ---------------------------------------------------------------------------


@dataclass
class SegmentRef:
    """One encoded column segment inside a ``.quackdb`` file."""

    codec: str
    offset: int
    length: int
    validity_offset: int
    validity_length: int
    rows: int
    meta: dict = field(default_factory=dict)
    zone: ZoneMapEntry | None = None


class StorageFile:
    """An open, memory-mapped ``.quackdb`` file shared by the lazy
    columns loaded out of it; kept alive by the tables that reference
    it."""

    def __init__(self, path: str):
        self.path = path
        try:
            self._handle = open_path(path, "rb")
        except OSError as exc:
            raise QuackError(f"{path}: cannot open database: {exc}") from exc
        try:
            self._mmap = mmap.mmap(self._handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            self._handle.close()
            raise QuackError(
                f"{path}: not a quack database file: {exc}"
            ) from exc

    def __len__(self) -> int:
        return len(self._mmap)

    def read(self, offset: int, length: int) -> bytes:
        count("storage.bytes_read", length)
        return self._mmap[offset:offset + length]

    def close(self) -> None:
        self._mmap.close()
        self._handle.close()

    def __enter__(self) -> "StorageFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class StorageColumn(ColumnData):
    """A column whose sealed row groups live in a :class:`StorageFile`.

    Stored segments decode on first touch and are cached as whole
    :class:`Vector` objects so derived ``_aux`` views (box SoA caches)
    survive repeated scans; the cache is dropped on :meth:`rewrite`, so a
    reload can never serve a stale fingerprint.  Appends after load land
    in the in-memory tail/segments inherited from :class:`ColumnData`,
    ordered *after* every stored group.
    """

    __slots__ = ("source", "refs", "_decoded", "_decode_lock")

    def __init__(self, ltype: LogicalType, source: StorageFile,
                 refs: list[SegmentRef]):
        super().__init__(ltype)
        self.source = source
        self.refs = refs
        self._decoded: dict[int, Vector] = {}
        self._decode_lock = threading.Lock()

    def __len__(self) -> int:
        return sum(ref.rows for ref in self.refs) + super().__len__()

    def segment_count(self) -> int:
        self.seal()
        return len(self.refs) + len(self.segments)

    def segment_rows(self, index: int) -> int:
        if index < len(self.refs):
            return self.refs[index].rows
        return len(self.segments[index - len(self.refs)])

    def segment_vector(self, index: int) -> Vector:
        if index >= len(self.refs):
            base = index - len(self.refs)
            return Vector(self.ltype, self.segments[base],
                          self.validity_segments[base])
        cached = self._decoded.get(index)
        if cached is not None:
            if verification_enabled():
                self._verify_decoded(index, cached)
            return cached
        with self._decode_lock:
            cached = self._decoded.get(index)
            if cached is None:
                cached = self._decode(index)
                self._decoded[index] = cached
        return cached

    def zone_entry(self, index: int) -> ZoneMapEntry:
        if index < len(self.refs):
            ref = self.refs[index]
            if ref.zone is None:
                ref.zone = compute_zone_entry(self.segment_vector(index))
            return ref.zone
        return compute_zone_entry(self.segment_vector(index))

    def _decode(self, index: int) -> Vector:
        ref = self.refs[index]
        payload = self.source.read(ref.offset, ref.length)
        data = decode_segment(ref.codec, payload, ref.meta, ref.rows,
                              self.ltype)
        validity = decode_validity(
            self.source.read(ref.validity_offset, ref.validity_length),
            ref.rows,
        )
        count("storage.segments_decoded")
        vector = Vector(self.ltype, data, validity)
        if verification_enabled():
            self._verify_decoded(index, vector)
        return vector

    def _verify_decoded(self, index: int, vector: Vector) -> None:
        """Decompressed-chunk verification: the decoded vector must still
        match its footer metadata, and any cached derived ``_aux`` views
        must match the payload they were built from."""
        ref = self.refs[index]
        if len(vector) != ref.rows:
            raise VerificationError(
                f"storage segment {index} of {self.source.path}: decoded "
                f"{len(vector)} rows, footer says {ref.rows}"
            )
        if ref.zone is not None:
            nulls = int(np.count_nonzero(~vector.validity))
            if nulls != ref.zone.nulls:
                raise VerificationError(
                    f"storage segment {index} of {self.source.path}: "
                    f"decoded {nulls} NULLs, zone map says {ref.zone.nulls}"
                )
        vector.verify_aux_fresh("storage decoded chunk")

    def rewrite(self, data: list[Any]) -> None:
        # Drop every stored segment *and* the decoded-vector cache in one
        # motion: a stale cached Vector here would keep serving _aux
        # views fingerprinted against the pre-rewrite payload.  The
        # stored row-group boundaries carry over to the rebuilt
        # in-memory segments so sibling storage columns stay aligned.
        self.seal()
        counts = [self.segment_rows(i) for i in range(self.segment_count())]
        with self._decode_lock:
            self.refs = []
            self._decoded.clear()
        self._reseal(data, counts)


class StorageTable(Table):
    """A table attached from a ``.quackdb`` file; scans decode lazily."""

    def __init__(self, name: str, columns: list[tuple[str, LogicalType]],
                 source: StorageFile):
        super().__init__(name, columns)
        self.source = source
        #: set on any mutation after load — the zone-map ANALYZE fast
        #: path and footer-backed pruning must not trust stale footers.
        self.appended_since_load = False

    def append_rows(self, rows) -> np.ndarray:
        self.appended_since_load = True
        return super().append_rows(rows)

    def delete_rows(self, row_ids) -> int:
        self.appended_since_load = True
        return super().delete_rows(row_ids)


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


def write_database(database: Any, path: str) -> int:
    """Serialize every catalog table to ``path`` in the columnar format;
    returns the number of tables written.  Live rows are re-chunked into
    fixed row groups, so tombstones never reach the disk."""
    tables = list(database.catalog.tables.values())
    with open_path(path, "wb") as handle:
        handle.write(_MAGIC)
        offset = len(_MAGIC)
        table_entries = []
        for table in tables:
            groups: list[dict] = []
            buffers: list[list[Any]] = [[] for _ in table.column_types]

            def flush() -> None:
                nonlocal offset
                columns = []
                zones = []
                for ltype, buffer in zip(table.column_types, buffers):
                    vector = Vector.from_values(ltype, buffer)
                    zone = compute_zone_entry(vector)
                    codec, payload, meta = encode_segment(vector)
                    validity_blob = encode_validity(vector.validity)
                    handle.write(payload)
                    handle.write(validity_blob)
                    descriptor = {
                        "codec": codec,
                        "offset": offset,
                        "length": len(payload),
                        "voffset": offset + len(payload),
                        "vlength": len(validity_blob),
                    }
                    if meta:
                        descriptor["meta"] = meta
                    columns.append(descriptor)
                    zones.append(zone.to_json())
                    offset += len(payload) + len(validity_blob)
                groups.append({
                    "rows": len(buffers[0]),
                    "columns": columns,
                    "zones": zones,
                })
                for buffer in buffers:
                    buffer.clear()

            for chunk, _ in table.scan():
                values = [vector.to_list() for vector in chunk.vectors]
                position = 0
                remaining = chunk.count
                while remaining > 0:
                    take = min(ROW_GROUP_SIZE - len(buffers[0]), remaining)
                    for buffer, column in zip(buffers, values):
                        buffer.extend(column[position:position + take])
                    position += take
                    remaining -= take
                    if len(buffers[0]) >= ROW_GROUP_SIZE:
                        flush()
            if buffers[0]:
                flush()
            table_entries.append({
                "name": table.name,
                "columns": [
                    [name, ltype.name]
                    for name, ltype in zip(table.column_names,
                                           table.column_types)
                ],
                "indexes": [
                    [index.name, index.type_name, index.column]
                    for index in table.indexes
                ],
                "row_groups": groups,
            })
        footer = {
            "magic": "quackdb",
            "format_version": FORMAT_VERSION,
            "extensions": list(database.loaded_extensions),
            "tables": table_entries,
        }
        handle.write(json.dumps(footer).encode("utf-8"))
        handle.write(struct.pack("<Q", offset))
        handle.write(_MAGIC)
        total = handle.tell()
    count("storage.bytes_written", total)
    count("storage.checkpoints")
    return len(tables)


# ---------------------------------------------------------------------------
# Reader (and the one-release pickle shim)
# ---------------------------------------------------------------------------


def read_database(database: Any, path: str) -> int:
    """Load ``path`` into the catalog as lazily-decoded storage tables;
    returns the number of tables loaded.  ``quackdb-v1`` pickle files go
    through the legacy shim; anything else raises :class:`QuackError`."""
    source = StorageFile(path)
    # On success the loaded tables own (and keep alive) the mapped
    # file; on *any* failure — format checks, footer parsing, or a
    # partial table instantiation — this handler closes it instead of
    # relying on every raise site to remember to.
    try:
        if source.read(0, len(_MAGIC)) != _MAGIC:
            source.close()
            return _read_legacy_pickle(database, path)
        if len(source) < len(_MAGIC) + _TRAILER_SIZE:
            raise QuackError(
                f"{path}: not a quack database file: truncated"
            )
        trailer = source.read(len(source) - _TRAILER_SIZE, _TRAILER_SIZE)
        if trailer[8:] != _MAGIC:
            raise QuackError(
                f"{path}: not a quack database file: missing footer "
                "trailer"
            )
        (footer_offset,) = struct.unpack("<Q", trailer[:8])
        try:
            footer = json.loads(source.read(
                footer_offset,
                len(source) - _TRAILER_SIZE - footer_offset,
            ).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise QuackError(
                f"{path}: not a quack database file: bad footer: {exc}"
            ) from exc
        version = footer.get("format_version")
        if not isinstance(version, int) or \
                footer.get("magic") != "quackdb":
            raise QuackError(f"{path}: not a quack database file")
        if version > FORMAT_VERSION:
            raise QuackError(
                f"{path}: format version {version} is newer than the "
                f"supported version {FORMAT_VERSION}"
            )
        # The footer records extension *names* for diagnostics only: the
        # caller must have loaded them already (types resolve by name
        # through the database's registry, matching the old pickle
        # loader).
        loaded = 0
        for entry in footer.get("tables", []):
            table = _instantiate_table(database, entry, source)
            database.catalog.create_table(table, or_replace=True)
            loaded += 1
            _rebuild_indexes(database, table, entry.get("indexes", []))
    except BaseException:
        source.close()
        raise
    count("storage.tables_attached", loaded)
    return loaded


def _instantiate_table(database: Any, entry: dict,
                       source: StorageFile) -> StorageTable:
    columns = [
        (name, database.types.lookup(type_name))
        for name, type_name in entry["columns"]
    ]
    table = StorageTable(entry["name"], columns, source)
    refs: list[list[SegmentRef]] = [[] for _ in columns]
    for group in entry.get("row_groups", []):
        zones = group.get("zones") or [None] * len(columns)
        for ci, descriptor in enumerate(group["columns"]):
            zone_raw = zones[ci]
            refs[ci].append(SegmentRef(
                codec=descriptor["codec"],
                offset=int(descriptor["offset"]),
                length=int(descriptor["length"]),
                validity_offset=int(descriptor["voffset"]),
                validity_length=int(descriptor["vlength"]),
                rows=int(group["rows"]),
                meta=descriptor.get("meta", {}),
                zone=ZoneMapEntry.from_json(zone_raw)
                if zone_raw is not None else None,
            ))
    table._columns = [
        StorageColumn(ltype, source, column_refs)
        for (_, ltype), column_refs in zip(columns, refs)
    ]
    return table


def _rebuild_indexes(database: Any, table: Table,
                     index_entries: list) -> None:
    for index_name, type_name, column in index_entries:
        index_type = database.config.index_types.lookup(type_name)
        instance = index_type.create_instance(
            name=index_name,
            table=table,
            column=column,
            database=database,
        )
        database.catalog.add_index(instance)


def _read_legacy_pickle(database: Any, path: str) -> int:
    """Read shim for the retired ``quackdb-v1`` whole-database pickle."""
    with open_path(path, "rb") as handle:
        try:
            payload = pickle.load(handle)
        except Exception as exc:
            raise QuackError(
                f"{path}: not a quack database file: {exc}"
            ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != "quackdb-v1":
        raise QuackError(f"{path}: not a quack database file")
    loaded = 0
    for entry in payload.get("tables", []):
        columns = [
            (name, database.types.lookup(type_name))
            for name, type_name in entry["columns"]
        ]
        table = Table(entry["name"], columns)
        if entry["rows"]:
            table.append_rows(entry["rows"])
        database.catalog.create_table(table, or_replace=True)
        loaded += 1
        _rebuild_indexes(database, table, entry.get("indexes", []))
    return loaded


# ---------------------------------------------------------------------------
# ANALYZE from zone maps (attached tables, no decode)
# ---------------------------------------------------------------------------


def analyze_from_zone_maps(table: Any) -> TableStats | None:
    """Build :class:`TableStats` for an attached table straight from its
    footer zone maps — no segment is decoded.  Returns ``None`` when the
    zone maps cannot speak for the data (mutations since load, tombstones,
    or a non-storage table), in which case the caller must full-scan."""
    if not isinstance(table, StorageTable):
        return None
    if table.appended_since_load or table._deleted_ids:
        return None
    columns = table._columns
    if not all(isinstance(column, StorageColumn) and not column.segments
               and not column.tail for column in columns):
        return None
    if not all(ref.zone is not None
               for column in columns for ref in column.refs):
        return None
    stats_columns = []
    row_count = 0
    for name, column in zip(table.column_names, columns):
        zones = [ref.zone for ref in column.refs]
        rows = sum(z.rows for z in zones)
        nulls = sum(z.nulls for z in zones)
        row_count = rows
        numeric = [z for z in zones
                   if z.numeric_complete and z.lo is not None]
        histogram = _histogram_from_ranges(
            [(z.lo, z.hi, z.non_null) for z in numeric]
        ) if len(numeric) == len([z for z in zones if z.non_null]) else None
        min_value: Any = min((z.lo for z in numeric), default=None)
        max_value: Any = max((z.hi for z in numeric), default=None)
        if min_value is None:
            strings = [z for z in zones
                       if z.string_complete and z.slo is not None]
            min_value = min((z.slo for z in strings), default=None)
            max_value = max((z.shi for z in strings), default=None)
        distinct = 0
        if all(z.distinct is not None for z in zones if z.non_null):
            distinct = min(rows - nulls,
                           sum(z.distinct or 0 for z in zones))
        elif histogram is not None:
            # Sum of per-group spreads is only an upper bound; leave the
            # estimators their numeric-histogram path and a crude NDV.
            distinct = max(1, (rows - nulls) // 2) if rows > nulls else 0
        stats_columns.append(ColumnStats(
            name=name,
            row_count=rows,
            null_count=nulls,
            distinct_count=distinct,
            min_value=min_value,
            max_value=max_value,
            histogram=histogram,
            box_dimensions=_box_dimensions_from_zones(zones),
            box_count=sum(z.non_null for z in zones if z.box_complete),
        ))
    count("storage.zonemap_analyze")
    return TableStats(
        table_name=table.name,
        row_count=row_count,
        columns=stats_columns,
    )


def _histogram_from_ranges(
    ranges: list[tuple[float, float, int]]
) -> NumericHistogram | None:
    """Equi-width histogram from per-group ``(lo, hi, count)`` ranges,
    spreading each group's mass uniformly over its range."""
    ranges = [r for r in ranges if r[2] > 0]
    if not ranges:
        return None
    lo = min(r[0] for r in ranges)
    hi = max(r[1] for r in ranges)
    total = sum(r[2] for r in ranges)
    if hi <= lo:
        return NumericHistogram(lo, hi, [total], total)
    counts = [0.0] * HISTOGRAM_BUCKETS
    width = (hi - lo) / HISTOGRAM_BUCKETS
    for rlo, rhi, n in ranges:
        first = min(int((rlo - lo) / width), HISTOGRAM_BUCKETS - 1)
        last = min(int((rhi - lo) / width), HISTOGRAM_BUCKETS - 1)
        share = n / (last - first + 1)
        for bucket in range(first, last + 1):
            counts[bucket] += share
    return NumericHistogram(lo, hi, [int(round(c)) for c in counts], total)


def _box_dimensions_from_zones(
    zones: list[ZoneMapEntry]
) -> dict[str, DimensionStats]:
    boxed = [z for z in zones if z.box_complete and z.box]
    if not boxed or len(boxed) != len([z for z in zones if z.non_null]):
        return {}
    axes = set(boxed[0].box)
    for zone in boxed[1:]:
        axes &= set(zone.box)
    dims: dict[str, DimensionStats] = {}
    for axis in axes:
        ranges = [(z.box[axis][0], z.box[axis][1], z.non_null)
                  for z in boxed]
        histogram = _histogram_from_ranges(ranges)
        if histogram is None:
            continue
        total = sum(r[2] for r in ranges)
        dims[axis] = DimensionStats(
            lo=min(r[0] for r in ranges),
            hi=max(r[1] for r in ranges),
            center_histogram=histogram,
            # The group extent spans every member box; half the mean
            # extent is the best width guess the footer offers.
            mean_half_width=sum((r[1] - r[0]) / 2.0 * r[2]
                                for r in ranges) / max(total, 1),
        )
    return dims


# ---------------------------------------------------------------------------
# Spill files (external sort / grace join / partitioned aggregation)
# ---------------------------------------------------------------------------


class SpillFile:
    """Length-prefixed pickled row batches in an anonymous temp file.

    One writer, then one sequential reader — exactly the lifecycle of a
    sort run or a join/aggregation partition.  The file is unlinked on
    creation (``tempfile.TemporaryFile``), so crashed queries leak no
    artifacts."""

    def __init__(self) -> None:
        self._handle = tempfile.TemporaryFile(prefix="quack-spill-")
        self.rows = 0
        self.bytes = 0

    def write_rows(self, rows: list[tuple]) -> None:
        blob = pickle.dumps(rows, protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.write(struct.pack("<Q", len(blob)))
        self._handle.write(blob)
        self.rows += len(rows)
        self.bytes += len(blob) + 8
        count("storage.spill_bytes", len(blob) + 8)
        count("storage.spill_rows", len(rows))

    def read_batches(self) -> Iterator[list[tuple]]:
        self._handle.seek(0)
        while True:
            header = self._handle.read(8)
            if not header:
                return
            (length,) = struct.unpack("<Q", header)
            yield pickle.loads(self._handle.read(length))

    def read_rows(self) -> Iterator[tuple]:
        for batch in self.read_batches():
            yield from batch

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def chunk_nbytes(chunk: Any) -> int:
    """Working-set estimate of one :class:`DataChunk` for the
    ``memory_limit`` watermark; object payloads use a flat per-slot
    estimate."""
    total = 0
    for vector in chunk.vectors:
        if vector.data.dtype == object:
            total += len(vector.data) * _OBJECT_SLOT_BYTES
        else:
            total += vector.data.nbytes
        total += vector.validity.nbytes
    return total


def rows_nbytes(rows: list[tuple], width: int) -> int:
    """Watermark estimate for a list of row tuples."""
    return len(rows) * max(width, 1) * _OBJECT_SLOT_BYTES
