"""Logical types of the quack engine.

Built-in types cover the SQL scalar types the paper's queries use; user
defined types (UDTs) carry a Python class and are stored in object vectors
— the engine-level equivalent of the paper's "MEOS types are represented
using the native DuckDB type BLOB … while the alias ensures that queries
can refer to the type as stbox" (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import BinderError


@dataclass(frozen=True)
class LogicalType:
    """A SQL-level type.

    ``physical`` selects the vector representation: ``bool``/``int64``/
    ``float64`` map to NumPy arrays, ``object`` to Python object arrays.
    """

    name: str
    physical: str = "object"
    #: For user-defined types: the Python class of the values.
    python_class: type | None = None
    #: Marks types registered by extensions.
    is_user: bool = False

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        if isinstance(other, LogicalType):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)


BOOLEAN = LogicalType("BOOLEAN", "bool")
INTEGER = LogicalType("INTEGER", "int64")
BIGINT = LogicalType("BIGINT", "int64")
DOUBLE = LogicalType("DOUBLE", "float64")
VARCHAR = LogicalType("VARCHAR", "object")
BLOB = LogicalType("BLOB", "object")
TIMESTAMP = LogicalType("TIMESTAMP", "int64")  # usecs since epoch (UTC)
DATE = LogicalType("DATE", "int64")  # days since epoch
INTERVAL = LogicalType("INTERVAL", "object")
LIST = LogicalType("LIST", "object")
#: Pseudo-type used in function signatures that accept anything.
ANY = LogicalType("ANY", "object")
#: NULL literal type before binding settles it.
SQLNULL = LogicalType("NULL", "object")

_NUMERIC_ORDER = {"INTEGER": 0, "BIGINT": 1, "DOUBLE": 2}

_BUILTINS = {
    t.name: t
    for t in (
        BOOLEAN,
        INTEGER,
        BIGINT,
        DOUBLE,
        VARCHAR,
        BLOB,
        TIMESTAMP,
        DATE,
        INTERVAL,
        LIST,
    )
}
_ALIASES = {
    "INT": INTEGER,
    "INT4": INTEGER,
    "INT8": BIGINT,
    "LONG": BIGINT,
    "FLOAT": DOUBLE,
    "FLOAT8": DOUBLE,
    "REAL": DOUBLE,
    "DOUBLE PRECISION": DOUBLE,
    "NUMERIC": DOUBLE,
    "DECIMAL": DOUBLE,
    "TEXT": VARCHAR,
    "STRING": VARCHAR,
    "TIMESTAMPTZ": TIMESTAMP,
    "DATETIME": TIMESTAMP,
    "BOOL": BOOLEAN,
    "BYTEA": BLOB,
    "WKB_BLOB": BLOB,
}


class TypeRegistry:
    """Per-database registry of logical types (builtins + extension UDTs)."""

    def __init__(self):
        self._types: dict[str, LogicalType] = dict(_BUILTINS)
        for alias, target in _ALIASES.items():
            self._types[alias] = target

    def register(self, ltype: LogicalType, aliases: tuple[str, ...] = ()) -> None:
        key = ltype.name.upper()
        self._types[key] = ltype
        for alias in aliases:
            self._types[alias.upper()] = ltype

    def lookup(self, name: str) -> LogicalType:
        key = name.strip().upper()
        # 'DECIMAL(10,2)' and friends: strip type modifiers.
        if "(" in key:
            key = key[: key.index("(")].strip()
        found = self._types.get(key)
        if found is None:
            raise BinderError(f"unknown type {name!r}")
        return found

    def known(self, name: str) -> bool:
        try:
            self.lookup(name)
            return True
        except BinderError:
            return False


def is_numeric(ltype: LogicalType) -> bool:
    return ltype.name in _NUMERIC_ORDER


def common_numeric(a: LogicalType, b: LogicalType) -> LogicalType:
    order_a = _NUMERIC_ORDER[a.name]
    order_b = _NUMERIC_ORDER[b.name]
    return a if order_a >= order_b else b


def implicit_cast_cost(source: LogicalType, target: LogicalType) -> int | None:
    """Cost of implicitly casting ``source`` to ``target``; None if illegal."""
    if source == target:
        return 0
    if source == SQLNULL:
        return 0
    if target == ANY:
        return 3
    if is_numeric(source) and is_numeric(target):
        if _NUMERIC_ORDER[source.name] < _NUMERIC_ORDER[target.name]:
            return 1
        return 2  # narrowing allowed but disfavoured
    if source == DATE and target == TIMESTAMP:
        return 1
    # String literals implicitly parse into user types and intervals
    # (DuckDB's VARCHAR -> anything auto cast for literals).
    if source == VARCHAR and (target.is_user or target == INTERVAL
                              or target == TIMESTAMP or target == DATE):
        return 2
    if source == BLOB and target.is_user:
        return 2
    if target == BLOB and source.is_user:
        return 2
    return None
