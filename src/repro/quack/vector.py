"""Vectors and data chunks: the unit of execution in the quack engine.

A :class:`Vector` is a typed column of values with a validity mask; a
:class:`DataChunk` is an ordered set of equally sized vectors — the
engine's analogue of DuckDB's ``Vector`` / ``DataChunk`` (paper §3.4 shows
scalar functions with the ``(DataChunk &args, …, Vector &result)``
signature; the Python registration API mirrors that shape).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..analysis.config import verification_enabled
from ..analysis.errors import VerificationError
from .errors import ExecutionError
from .types import BOOLEAN, LogicalType

STANDARD_VECTOR_SIZE = 2048

#: Serializes ``_aux`` publication.  The builders run *outside* the lock
#: (they can be expensive — box SoA extraction walks object payloads);
#: the lock only covers the publish step, so concurrent morsel workers
#: may double-compute a view but every reader observes exactly one
#: fully-built value per key.  A single module-level lock is enough:
#: publishes are rare (once per vector per view) and very short.
_AUX_PUBLISH_LOCK = threading.Lock()

#: Reserved ``_aux`` key holding the payload fingerprint recorded when the
#: first derived view was built (verification mode only).
_AUX_TOKEN_KEY = "__verify_payload_token__"

_PHYSICAL_DTYPES = {
    "bool": np.bool_,
    "int64": np.int64,
    "float64": np.float64,
    "object": object,
}


class KernelFallback(Exception):
    """Internal signal: a vectorized kernel cannot handle this data and
    the caller must take the row-wise fallback path (not a user error)."""


class Vector:
    """A column of ``count`` values of one logical type plus validity."""

    __slots__ = ("ltype", "data", "validity", "_aux")

    def __init__(self, ltype: LogicalType, data: np.ndarray,
                 validity: np.ndarray | None = None):
        self.ltype = ltype
        self.data = data
        if validity is None:
            validity = np.ones(len(data), dtype=np.bool_)
        self.validity = validity
        #: lazily created per-vector cache for derived columnar views
        #: (e.g. the struct-of-arrays bounding boxes of box kernels)
        self._aux: dict[Any, Any] | None = None

    def cached_aux(self, key: Any, builder: Callable[["Vector"], Any]) -> Any:
        """Build-once cache of a derived view of this vector's payload.

        Under verification mode the payload is fingerprinted when the
        first view is built, and every later cache hit re-checks the
        fingerprint so a mutation that stales the cached views (e.g. the
        box SoA caches after a write) fails loudly instead of silently
        serving stale data.

        Thread-safe for concurrent morsel workers: the value is computed
        outside :data:`_AUX_PUBLISH_LOCK` and published atomically under
        it (first publish wins, losers discard their copy), so no reader
        ever observes a partially-written entry and repeat lookups always
        return the same object.
        """
        aux = self._aux
        if aux is not None:
            try:
                value = aux[key]
            except KeyError:
                pass
            else:
                if verification_enabled():
                    self.verify_aux_fresh("cached_aux hit")
                return value
        # The fingerprint must be taken *before* the builder runs: the
        # builder reads the payload, and a token captured afterwards
        # could mask a concurrent mutation that the builder already saw.
        token = self._payload_token() if verification_enabled() else None
        value = builder(self)
        with _AUX_PUBLISH_LOCK:
            aux = self._aux
            if aux is None:
                aux = self._aux = {}
            if token is not None:
                aux.setdefault(_AUX_TOKEN_KEY, token)
            value = aux.setdefault(key, value)
        return value

    def _payload_token(self) -> tuple:
        """Cheap fingerprint of the payload for stale-``_aux`` detection.

        Object payloads fingerprint element identities (replacing a value
        is caught; mutating one in place is not — those are owned by the
        extension types and treated as immutable)."""
        if self.data.dtype == object:
            payload = hash(tuple(map(id, self.data.tolist())))
        else:
            payload = hash(self.data.tobytes())
        return (len(self.data), payload, hash(self.validity.tobytes()))

    def verify_aux_fresh(self, where: str) -> None:
        """Raise :class:`VerificationError` if the payload changed after
        derived ``_aux`` views were built (verification mode records the
        fingerprint; without it this is a no-op)."""
        aux = self._aux
        if aux is None:
            return
        token = aux.get(_AUX_TOKEN_KEY)
        if token is not None and token != self._payload_token():
            raise VerificationError(
                f"stale _aux cache in {where}: {self.ltype.name} vector "
                f"payload changed after derived views were built"
            )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def empty(cls, ltype: LogicalType, count: int) -> "Vector":
        dtype = _PHYSICAL_DTYPES[ltype.physical]
        data = np.zeros(count, dtype=dtype)
        return cls(ltype, data, np.ones(count, dtype=np.bool_))

    @classmethod
    def from_values(cls, ltype: LogicalType, values: Iterable[Any]) -> "Vector":
        items = list(values)
        count = len(items)
        validity = np.fromiter(
            (v is not None for v in items), dtype=np.bool_, count=count
        )
        dtype = _PHYSICAL_DTYPES[ltype.physical]
        if ltype.physical == "object":
            data = np.empty(count, dtype=object)
            for i, v in enumerate(items):
                data[i] = v
        else:
            fill = False if ltype.physical == "bool" else 0
            data = np.fromiter(
                (fill if v is None else v for v in items),
                dtype=dtype,
                count=count,
            )
        return cls(ltype, data, validity)

    @classmethod
    def constant(cls, ltype: LogicalType, value: Any, count: int) -> "Vector":
        if ltype.physical == "object":
            data = np.empty(count, dtype=object)
            for i in range(count):
                data[i] = value
        else:
            dtype = _PHYSICAL_DTYPES[ltype.physical]
            fill = (False if ltype.physical == "bool" else 0) if value is None else value
            data = np.full(count, fill, dtype=dtype)
        if value is None:
            validity = np.zeros(count, dtype=np.bool_)
        else:
            validity = np.ones(count, dtype=np.bool_)
        return cls(ltype, data, validity)

    # -- access -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def value(self, index: int) -> Any:
        if not self.validity[index]:
            return None
        item = self.data[index]
        if isinstance(item, np.generic):
            return item.item()
        return item

    def to_list(self) -> list[Any]:
        return [self.value(i) for i in range(len(self))]

    def slice(self, selection: np.ndarray) -> "Vector":
        """Select rows by an integer index array or boolean mask."""
        return Vector(self.ltype, self.data[selection],
                      self.validity[selection])

    def take(self, indices: Sequence[int]) -> "Vector":
        idx = np.asarray(indices, dtype=np.int64)
        return Vector(self.ltype, self.data[idx], self.validity[idx])

    def with_type(self, ltype: LogicalType) -> "Vector":
        """Reinterpret under a different logical type (same physical)."""
        return Vector(ltype, self.data, self.validity)

    def all_valid(self) -> bool:
        return bool(self.validity.all())

    def null_mask(self) -> np.ndarray:
        """Boolean mask of NULL rows (inverse of the validity mask)."""
        return ~self.validity

    def sort_key(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Ascending-comparable codes for ``np.lexsort``-based ORDER BY.

        Returns ``(codes, nan_mask)``: ``codes`` is a numeric array that
        orders like the column values (object payloads are factorized via
        ``np.unique``), with NULL slots zeroed so NULL placement is decided
        solely by a separate validity key; ``nan_mask`` marks float NaNs
        (``None`` when there are none) so callers can rank NaN as the
        greatest value.  Raises :class:`KernelFallback` when the payloads
        cannot be ordered by NumPy (e.g. mixed incomparable objects).
        """
        physical = self.ltype.physical
        if physical == "bool":
            return np.where(self.validity, self.data, False), None
        if physical == "int64":
            return np.where(self.validity, self.data, np.int64(0)), None
        if physical == "float64":
            values = self.data + 0.0  # canonicalize -0.0
            nan = np.isnan(values) & self.validity
            if nan.any():
                values = np.where(nan, np.inf, values)
            values = np.where(self.validity, values, 0.0)
            return values, (nan if nan.any() else None)
        codes = np.zeros(len(self.data), dtype=np.int64)
        if self.validity.any():
            try:
                _, inverse = np.unique(self.data[self.validity],
                                       return_inverse=True)
            except TypeError as exc:
                raise KernelFallback(str(exc)) from None
            codes[self.validity] = inverse
        return codes, None

    def __repr__(self) -> str:
        preview = ", ".join(repr(self.value(i)) for i in range(min(4, len(self))))
        return f"<Vector {self.ltype.name}[{len(self)}] {preview}…>"


class DataChunk:
    """A batch of rows as a list of equally sized vectors."""

    __slots__ = ("vectors",)

    def __init__(self, vectors: list[Vector]):
        if vectors:
            count = len(vectors[0])
            for v in vectors[1:]:
                if len(v) != count:
                    raise ExecutionError("misaligned vectors in chunk")
        self.vectors = vectors

    @property
    def count(self) -> int:
        return len(self.vectors[0]) if self.vectors else 0

    def column(self, index: int) -> Vector:
        return self.vectors[index]

    def slice(self, selection: np.ndarray) -> "DataChunk":
        return DataChunk([v.slice(selection) for v in self.vectors])

    def row(self, index: int) -> tuple:
        return tuple(v.value(index) for v in self.vectors)

    def rows(self) -> list[tuple]:
        return [self.row(i) for i in range(self.count)]

    def __repr__(self) -> str:
        return f"<DataChunk {len(self.vectors)}x{self.count}>"


def concat_vectors(parts: list[Vector]) -> Vector:
    if not parts:
        raise ExecutionError("cannot concatenate zero vectors")
    ltype = parts[0].ltype
    data = np.concatenate([p.data for p in parts])
    validity = np.concatenate([p.validity for p in parts])
    return Vector(ltype, data, validity)


def boolean_selection(vector: Vector) -> np.ndarray:
    """Boolean mask of rows where the vector is valid and true."""
    if vector.ltype != BOOLEAN:
        raise ExecutionError(
            f"filter condition is {vector.ltype.name}, expected BOOLEAN"
        )
    mask = vector.data.astype(np.bool_, copy=False)
    return np.logical_and(mask, vector.validity)
