import pytest

from repro.analysis import set_verification_enabled


@pytest.fixture
def verification():
    """Enable verification mode for one test, restoring it afterwards."""
    set_verification_enabled(True)
    yield
    set_verification_enabled(False)
