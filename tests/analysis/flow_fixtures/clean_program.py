"""Negative control: every sharp idiom here is the *safe* variant, so
the analyzer must report nothing — locked writes, the ``setdefault``
atomic publish, worker-local containers, ``*_locked`` trusted helpers,
context-managed and finally-closed handles, handle-ownership transfer,
a read SET flag, and an env toggle on a reachable public path.
"""

import os
import threading

from storage import SpillFile, open_path


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._memo = {}
        self._hits = 0

    def record(self, key, value):
        with self._lock:
            self._memo[key] = value
            self._hits += 1

    def _bump_locked(self):
        self._hits += 1

    def publish(self, key, value):
        return self._memo.setdefault(key, value)


def _merge_counts(cache, pairs):
    totals = {}
    for key, value in pairs:
        totals[key] = totals.get(key, 0) + value
    for key, value in totals.items():
        cache.record(key, value)


def _memo_publish(cache, key, value):
    return cache.publish(key, value)


def copy_rows(rows):
    out = SpillFile()
    try:
        out.write_rows(rows)
    finally:
        out.close()


def sum_rows(path):
    with open_path(path) as handle:
        return handle.rows


def make_spill():
    return SpillFile()


def collect_spills(parts):
    parts.append(SpillFile())


def read_debug_flag():
    return os.environ.get("REPRO_DEBUG", "")


def run(pool, cache):
    pool.run_tasks([_merge_counts, _memo_publish])
