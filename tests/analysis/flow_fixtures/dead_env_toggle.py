"""Dead env toggle: only a private function nothing calls reads the
variable, so the switch can never take effect.  Expected: FLOW003
blaming ``_legacy_spill_dir`` for ``REPRO_SPILL_DIR``.
"""

import os


def _legacy_spill_dir():
    return os.environ.get("REPRO_SPILL_DIR", "/tmp")
