"""Dead kill switch: the SET handler assigns ``debug_joins`` but no
execution path ever reads it, while ``memory_limit`` is read by the
planner and must stay clean.  Expected: FLOW003 blaming
``Session._execute_set`` for ``debug_joins`` only.
"""


class Session:
    def _execute_set(self, name, value):
        if name == "debug_joins":
            self.debug_joins = bool(value)
        elif name == "memory_limit":
            self.memory_limit = int(value)

    def plan(self, query):
        if self.memory_limit:
            return ("spill", query)
        return ("memory", query)
