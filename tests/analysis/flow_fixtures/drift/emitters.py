"""Counter drift: one undeclared exact name, one undeclared f-string
prefix, and one declared-but-never-emitted entry back in the registry.
Expected: FLOW002 for ``scan.rows_out`` (bump_undeclared), ``custom.``
(bump_custom), and ``cache.unused_counter`` (registry module) — while
``scan.rows_in`` and the ``optimizer.rule.`` prefix stay clean.
"""


def bump_undeclared(stats):
    stats.bump("scan.rows_out")


def bump_custom(stats, name):
    stats.bump(f"custom.{name}")


def bump_declared(stats):
    stats.bump("scan.rows_in")


def bump_declared_prefix(stats, rule):
    stats.bump(f"optimizer.rule.{rule}")
