"""The fixture corpus's own observability registry: FLOW002 reads these
literals from whichever module defines them."""

DECLARED_COUNTERS = (
    "scan.rows_in",
    "cache.unused_counter",
)

DECLARED_PREFIXES = (
    "optimizer.rule.",
)
