"""Resource leaks: a spill handle that leaks when a later call raises,
and one that is discarded outright.  Expected: FLOW001 twice —
``SpillFile:handle`` in ``spill_rows`` and ``SpillFile:discarded`` in
``spill_and_forget``.
"""

from storage import SpillFile


def spill_rows(rows):
    handle = SpillFile()
    handle.write_rows(rows)
    handle.close()


def spill_and_forget(rows):
    SpillFile()
    return len(rows)
