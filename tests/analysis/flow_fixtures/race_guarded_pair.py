"""Guarded-by violation: ``_rows`` is written under ``_lock`` at one
site and bare at another.  Either the lock is required (the bare site is
a race) or it is not (the locked site is cargo cult) — the analyzer
flags the bare site either way.  Expected: RACE002 blaming
``Buffer.drop`` for ``Buffer._rows``.
"""

import threading


class Buffer:
    def __init__(self):
        self._lock = threading.Lock()
        self._rows = []

    def put(self, row):
        with self._lock:
            self._rows = self._rows + [row]

    def drop(self):
        self._rows = []
