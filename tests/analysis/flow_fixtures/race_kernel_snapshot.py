"""PR 5 race class 4 in miniature: the ``KERNELS_ENABLED`` global flip.

A worker that hits a kernel bug disables kernels for everyone by
rebinding the module global mid-query; peers that already snapshotted
the flag diverge.  Expected: RACE001 blaming ``_disable_on_error`` for
``KERNELS_ENABLED``.
"""

KERNELS_ENABLED = True


def _disable_on_error():
    global KERNELS_ENABLED
    KERNELS_ENABLED = False


def run(pool):
    pool.run_tasks([_disable_on_error])
