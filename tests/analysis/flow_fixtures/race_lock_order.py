"""Lock-ordering cycle: two paths acquire the same locks in opposite
orders — a deadlock when two threads interleave.  Expected: RACE002
with a ``lock-order:`` key naming both locks.
"""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def take_ab():
    with LOCK_A:
        with LOCK_B:
            return "ab"


def take_ba():
    with LOCK_B:
        with LOCK_A:
            return "ba"
