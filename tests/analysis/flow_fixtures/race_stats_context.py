"""PR 5 race class 3 in miniature: shared statistics object counters.

The stats object handed to every scan task is mutated with a bare
read-modify-write; concurrent chunks lose increments.  Expected:
RACE001 blaming ``_scan_chunk`` for ``stats.rows_in``.
"""


def _scan_chunk(stats, chunk):
    stats.rows_in += len(chunk)


def run(pool, stats):
    pool.run_tasks([_scan_chunk])
