"""PR 5 race class 1 in miniature: unsynchronized CTE plan-cache publish.

Two workers compiling the same correlated subquery both write the shared
plan cache dict; the loser's plan object is torn out from under readers.
Expected: RACE001 blaming ``_compile_cte`` for ``ctx.cte_plans[]``.
"""


def _compile_cte(ctx, cte_id, plan):
    ctx.cte_plans[cte_id] = plan


def run(pool, ctx):
    pool.run_tasks([_compile_cte])
