"""PR 5 race class 2 in miniature: the ``Vector._aux`` memo write.

A lazily-computed auxiliary structure is published with a plain
attribute store from code two workers can reach at once.  Expected:
RACE001 blaming ``MiniVector.refresh_aux`` for ``self._aux``.
"""


class MiniVector:
    def __init__(self, data):
        self.data = data
        self._aux = None

    def refresh_aux(self):
        if self._aux is None:
            self._aux = sum(self.data)
        return self._aux


def _task(vec):
    return vec.refresh_aux()


def run(pool, vec):
    pool.run_tasks([_task])
