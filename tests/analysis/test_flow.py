"""Flow-analyzer tests: the seeded-bug fixture corpus (each of the four
PR 5 race classes in miniature, plus lock ordering, guarded-by, leaks,
counter drift, and dead kill switches), the clean-program negative, the
suppression/baseline machinery, and the lint/flow single-parse
regression."""

import ast
import textwrap
from pathlib import Path

from repro.analysis import flow
from repro.analysis.lint import lint_model, lint_paths
from repro.analysis.project import ProjectModel

FIXTURES = Path(__file__).parent / "flow_fixtures"


def analyze(*names):
    _, findings = flow.analyze([FIXTURES / name for name in names])
    return findings


def triples(findings):
    return [(f.rule, f.symbol, f.key) for f in findings]


class TestSeededRaces:
    """The four PR 5 race classes, reintroduced in miniature: the
    analyzer must name the exact rule, function, and shared state —
    and nothing else (zero false positives per fixture)."""

    def test_subquery_cache_publish(self):
        assert triples(analyze("race_subquery_cache.py")) == [
            ("RACE001", "race_subquery_cache._compile_cte",
             "ctx.cte_plans[]"),
        ]

    def test_vector_aux_memo(self):
        assert triples(analyze("race_vector_aux.py")) == [
            ("RACE001", "race_vector_aux.MiniVector.refresh_aux",
             "self._aux"),
        ]

    def test_shared_stats_counter(self):
        assert triples(analyze("race_stats_context.py")) == [
            ("RACE001", "race_stats_context._scan_chunk",
             "stats.rows_in"),
        ]

    def test_global_kernel_flag_flip(self):
        assert triples(analyze("race_kernel_snapshot.py")) == [
            ("RACE001", "race_kernel_snapshot._disable_on_error",
             "KERNELS_ENABLED"),
        ]

    def test_worker_context_classification(self):
        from repro.analysis.flow.passes import WORKER_CONTEXTS
        model, _ = flow.analyze([FIXTURES / "race_subquery_cache.py"])
        # The task is worker-reachable ("both": the coordinator also
        # references it at the submit site); `run` itself never is.
        assert model.contexts[
            "race_subquery_cache._compile_cte"] in WORKER_CONTEXTS
        assert model.contexts["race_subquery_cache.run"] == "coordinator"


class TestLockDiscipline:
    def test_lock_ordering_cycle(self):
        findings = analyze("race_lock_order.py")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "RACE002"
        assert finding.key == (
            "lock-order:race_lock_order.LOCK_A->"
            "race_lock_order.LOCK_B->race_lock_order.LOCK_A"
        )
        assert finding.symbol == "race_lock_order.take_ba"

    def test_guarded_by_violation(self):
        findings = analyze("race_guarded_pair.py")
        assert triples(findings) == [
            ("RACE002", "race_guarded_pair.Buffer.drop", "Buffer._rows"),
        ]
        assert "'Buffer._lock'" in findings[0].message


class TestLeaksAndDrift:
    def test_spillfile_leaks(self):
        findings = analyze("leak_spillfile.py")
        assert triples(findings) == [
            ("FLOW001", "leak_spillfile.spill_rows", "SpillFile:handle"),
            ("FLOW001", "leak_spillfile.spill_and_forget",
             "SpillFile:discarded"),
        ]
        assert "raises" in findings[0].message

    def test_counter_drift(self):
        _, findings = flow.analyze([FIXTURES / "drift"])
        assert sorted(triples(findings)) == [
            ("FLOW002", "emitters.bump_custom", "custom."),
            ("FLOW002", "emitters.bump_undeclared", "scan.rows_out"),
            ("FLOW002", "registry", "cache.unused_counter"),
        ]

    def test_dead_set_flag(self):
        assert triples(analyze("dead_set_flag.py")) == [
            ("FLOW003", "dead_set_flag.Session._execute_set",
             "debug_joins"),
        ]

    def test_dead_env_toggle(self):
        assert triples(analyze("dead_env_toggle.py")) == [
            ("FLOW003", "dead_env_toggle._legacy_spill_dir",
             "REPRO_SPILL_DIR"),
        ]


class TestNegatives:
    def test_clean_program_has_zero_findings(self):
        assert analyze("clean_program.py") == []

    def test_whole_corpus_has_no_unexpected_rules(self):
        """Analyzing every fixture at once must raise only the five
        catalogued rules — no cross-fixture interference artifacts."""
        _, findings = flow.analyze([FIXTURES])
        assert {f.rule for f in findings} <= {
            "RACE001", "RACE002", "FLOW001", "FLOW002", "FLOW003",
        }
        assert not [f for f in findings
                    if "clean_program" in f.symbol]


class TestSuppressionAndBaseline:
    def test_inline_suppression(self, tmp_path):
        source = textwrap.dedent("""\
            def _task(stats, chunk):
                stats.rows += len(chunk)  # flow: ignore[RACE001]

            def run(pool):
                pool.run_tasks([_task])
        """)
        path = tmp_path / "suppressed.py"
        path.write_text(source, encoding="utf-8")
        _, findings = flow.analyze([path])
        assert findings == []

    def test_suppression_is_rule_scoped(self, tmp_path):
        source = textwrap.dedent("""\
            def _task(stats, chunk):
                stats.rows += len(chunk)  # flow: ignore[FLOW001]

            def run(pool):
                pool.run_tasks([_task])
        """)
        path = tmp_path / "wrong_rule.py"
        path.write_text(source, encoding="utf-8")
        _, findings = flow.analyze([path])
        assert [f.rule for f in findings] == ["RACE001"]

    def test_baseline_round_trip(self, tmp_path):
        findings = analyze("race_stats_context.py")
        baseline_path = tmp_path / "baseline.txt"
        baseline_path.write_text(
            flow.format_baseline(findings), encoding="utf-8")
        baseline = flow.load_baseline(baseline_path)
        new, accepted, stale = flow.split_by_baseline(findings, baseline)
        assert new == [] and len(accepted) == 1 and stale == []

    def test_baseline_preserves_justifications(self, tmp_path):
        findings = analyze("race_stats_context.py")
        previous = {findings[0].fingerprint: "merged by coordinator"}
        text = flow.format_baseline(findings, previous)
        assert "merged by coordinator" in text
        baseline_path = tmp_path / "baseline.txt"
        baseline_path.write_text(text, encoding="utf-8")
        assert flow.load_baseline(baseline_path)[
            findings[0].fingerprint] == "merged by coordinator"

    def test_stale_entries_detected(self):
        findings = analyze("race_stats_context.py")
        baseline = {"RACE001 gone.symbol gone.key": "obsolete"}
        new, accepted, stale = flow.split_by_baseline(findings, baseline)
        assert len(new) == 1 and accepted == []
        assert stale == ["RACE001 gone.symbol gone.key"]


class TestSharedParsing:
    def test_lint_and_flow_parse_each_file_once(self, monkeypatch):
        counted = []
        real_parse = ast.parse

        def counting_parse(source, *args, **kwargs):
            counted.append(kwargs.get("filename"))
            return real_parse(source, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)
        model = ProjectModel.parse([FIXTURES])
        parses_after_load = len(counted)
        assert parses_after_load == len(model.modules) > 0
        lint_model(model)
        flow.analyze([FIXTURES], model=model)
        assert len(counted) == parses_after_load

    def test_lint_model_matches_per_file_lint(self):
        via_model = lint_paths([str(FIXTURES)])
        from repro.analysis.lint import lint_file
        from repro.analysis.project import iter_python_files
        per_file = []
        for path in iter_python_files([str(FIXTURES)]):
            per_file.extend(lint_file(path))
        per_file.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        assert via_model == per_file

    def test_syntax_error_survives_model_path(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n", encoding="utf-8")
        violations = lint_paths([str(path)])
        assert [v.code for v in violations] == ["ANL000"]
        _, findings = flow.analyze([path])
        assert findings == []
