"""The committed tree must be lint-clean — the CI gate in test form."""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_source_tree_is_lint_clean():
    violations = run_lint([str(REPO_ROOT / "src")])
    assert violations == [], "\n".join(v.format() for v in violations)


def test_cli_reports_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    x = 1\nexcept:\n    pass\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(bad)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 1
    assert "ANL001" in proc.stdout


def test_cli_clean_exit(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("VALUE = 1\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", str(good)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0
    assert proc.stdout.strip() == ""
