"""Unit tests for ``python -m repro.analysis.lint --fix`` (ANL007
unused-import deletion): exact spans, valid output, idempotency, and
the CLI wiring."""

import ast
import textwrap

import pytest

from repro.analysis.lint import lint_paths
from repro.analysis.lint.fixes import fix_unused_imports


def fix(source, filename="m.py"):
    fixed, count = fix_unused_imports(source, filename)
    ast.parse(fixed)  # the result must always stay valid Python
    again, n_again = fix_unused_imports(fixed, filename)
    assert (again, n_again) == (fixed, 0), "fixer is not idempotent"
    return fixed, count


class TestWholeStatement:
    def test_drops_line(self):
        assert fix("import os\nx = 1\n") == ("x = 1\n", 1)

    def test_drops_indented_statement(self):
        source = "def f():\n    import os\n    return 1\n"
        assert fix(source) == ("def f():\n    return 1\n", 1)

    def test_multi_name_import_fully_dead(self):
        assert fix("import os, sys\nx = 1\n") == ("x = 1\n", 2)

    def test_multiple_statements(self):
        assert fix("import os\nimport sys\nx = 1\n") == ("x = 1\n", 2)

    def test_dotted_import_with_asname(self):
        source = "import os.path as p\nimport sys\nsys\n"
        assert fix(source) == ("import sys\nsys\n", 1)


class TestPartialStatement:
    def test_middle_alias(self):
        source = "from a import b, c, d\nb; d\n"
        assert fix(source) == ("from a import b, d\nb; d\n", 1)

    def test_tail_run_stays_valid(self):
        # b and c both dead at the end of the list: the separator comma
        # after `a`'s survivor must go too, or the result is invalid.
        source = "from a import b, c, d\nb\n"
        assert fix(source) == ("from a import b\nb\n", 2)

    def test_head_run(self):
        source = "from a import b, c, d\nd\n"
        assert fix(source) == ("from a import d\nd\n", 2)

    def test_import_statement_partial(self):
        assert fix("import os, sys\nsys\n") == ("import sys\nsys\n", 1)

    def test_parenthesized_last_alias(self):
        source = "from a import (\n    b,\n    c,\n)\nb\n"
        assert fix(source) == ("from a import (\n    b,\n)\nb\n", 1)

    def test_parenthesized_middle_alias(self):
        source = "from a import (\n    b,\n    c,\n    d,\n)\nb; d\n"
        expected = "from a import (\n    b,\n    d,\n)\nb; d\n"
        assert fix(source) == (expected, 1)


class TestExemptions:
    def test_init_py_untouched(self):
        assert fix("import os\n", filename="__init__.py") == \
            ("import os\n", 0)

    def test_reexport_idiom_untouched(self):
        assert fix("from a import b as b\n") == \
            ("from a import b as b\n", 0)

    def test_underscore_binding_untouched(self):
        assert fix("import _thread\n") == ("import _thread\n", 0)

    def test_future_import_untouched(self):
        source = "from __future__ import annotations\n"
        assert fix(source) == (source, 0)

    def test_used_import_untouched(self):
        assert fix("import os\nos.path\n") == ("import os\nos.path\n", 0)

    def test_string_annotation_counts_as_use(self):
        source = "from a import Thing\nx: \"Thing\" = None\n"
        assert fix(source) == (source, 0)

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            fix_unused_imports("def f(:\n", "m.py")


class TestCli:
    def test_fix_flag_rewrites_and_exits_clean(self, tmp_path):
        from repro.analysis.lint.__main__ import main
        path = tmp_path / "victim.py"
        path.write_text("import os\nimport sys\nsys.exit\n",
                        encoding="utf-8")
        assert lint_paths([str(path)]) != []
        assert main(["--fix", str(path)]) == 0
        assert path.read_text(encoding="utf-8") == \
            "import sys\nsys.exit\n"
        assert lint_paths([str(path)]) == []

    def test_fix_skips_unparseable_files(self, tmp_path):
        from repro.analysis.lint.__main__ import main
        path = tmp_path / "broken.py"
        source = "def f(:\n"
        path.write_text(source, encoding="utf-8")
        assert main(["--fix", str(path)]) == 1  # still reports ANL000
        assert path.read_text(encoding="utf-8") == source

    def test_jobs_flag_same_result(self, tmp_path):
        src = textwrap.dedent("""\
            import os

            def f():
                return 1
        """)
        for i in range(4):
            (tmp_path / f"mod{i}.py").write_text(src, encoding="utf-8")
        serial = lint_paths([str(tmp_path)])
        threaded = lint_paths([str(tmp_path)], jobs=4)
        assert serial == threaded
        assert [v.code for v in serial] == ["ANL007"] * 4
