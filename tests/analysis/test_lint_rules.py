"""Unit tests for the custom AST lint rules, fed synthetic sources."""

import ast
import textwrap

from repro.analysis.lint.rules import check_module


def run(source, module="repro.quack.executor", filename="executor.py"):
    tree = ast.parse(textwrap.dedent(source))
    return check_module(tree, module, filename)


def codes(source, **kwargs):
    return [code for _, _, code, _ in run(source, **kwargs)]


class TestBareExcept:
    def test_flagged(self):
        src = """
            try:
                x = 1
            except:
                pass
        """
        assert codes(src) == ["ANL001"]

    def test_typed_except_clean(self):
        src = """
            try:
                x = 1
            except ValueError:
                pass
        """
        assert codes(src) == []


class TestKernelFallbackProvenance:
    SRC = """
        from .errors import KernelFallback

        def f():
            raise KernelFallback("unsupported payload")
    """

    def test_flagged_outside_kernel_modules(self):
        assert "ANL002" in codes(self.SRC)

    def test_allowed_in_kernel_modules(self):
        assert "ANL002" not in codes(
            self.SRC, module="repro.quack.kernels", filename="kernels.py"
        )

    def test_attribute_form_flagged(self):
        src = """
            import errors

            def f():
                raise errors.KernelFallback
        """
        assert "ANL002" in codes(src)


class TestCounterNames:
    def test_undeclared_literal_flagged(self):
        violations = run('stats.bump("totally.bogus")')
        assert [c for _, _, c, _ in violations] == ["ANL003"]
        assert "totally.bogus" in violations[0][3]

    def test_declared_literal_clean(self):
        assert codes('stats.bump("verify.plans")') == []

    def test_declared_prefix_fstring_clean(self):
        assert codes('stats.bump(f"optimizer.rule.{name}")') == []

    def test_undeclared_prefix_fstring_flagged(self):
        assert codes('stats.bump(f"custom.{name}")') == ["ANL003"]

    def test_dynamic_name_left_to_runtime(self):
        assert codes("stats.bump(name)") == []

    def test_gauge_names_checked(self):
        assert codes(
            'stats.set_gauge("executor.peak_materialized_rows", 5)'
        ) == []
        assert codes('stats.gauge_max("bogus.gauge", 1)') == ["ANL003"]


class TestEngineImportBoundaries:
    def test_pgsim_importing_quack_internals_flagged(self):
        src = "from ..quack.kernels import sort_rows\nuse(sort_rows)\n"
        assert codes(
            src, module="repro.pgsim.executor", filename="executor.py"
        ) == ["ANL004"]

    def test_pgsim_importing_shared_frontend_clean(self):
        src = (
            "from ..quack.keys import hashable_key, sort_comparator\n"
            "use(hashable_key, sort_comparator)\n"
        )
        assert codes(
            src, module="repro.pgsim.executor", filename="executor.py"
        ) == []

    def test_quack_importing_pgsim_flagged(self):
        src = "from ..pgsim.table import Varlena\nuse(Varlena)\n"
        assert codes(
            src, module="repro.quack.executor", filename="executor.py"
        ) == ["ANL004"]

    def test_observability_importing_engine_flagged(self):
        src = "from repro.quack.vector import Vector\nuse(Vector)\n"
        assert codes(
            src, module="repro.observability.stats", filename="stats.py"
        ) == ["ANL004"]

    def test_unrelated_module_clean(self):
        src = "from repro.quack.kernels import sort_rows\nuse(sort_rows)\n"
        assert codes(
            src, module="repro.core.functions.boxes", filename="boxes.py"
        ) == []


class TestVectorOwnership:
    def test_foreign_payload_write_flagged(self):
        assert codes("vec.data[0] = 1") == ["ANL005"]
        assert codes("vec.validity = mask") == ["ANL005"]

    def test_self_write_clean(self):
        src = """
            class Vector:
                def reset(self):
                    self.data = None
        """
        assert codes(src) == []

    def test_owner_module_clean(self):
        assert codes(
            "vec.data[0] = 1",
            module="repro.quack.vector",
            filename="vector.py",
        ) == []


class TestEvaluateBatchFallback:
    def test_batch_without_scalar_flagged(self):
        src = """
            ScalarFunction(
                name="f", arg_types=(), return_type=T,
                evaluate_batch=kernel,
            )
        """
        violations = run(src)
        assert [c for _, _, c, _ in violations] == ["ANL006"]
        assert "no reachable scalar fallback" in violations[0][3]

    def test_batch_with_scalar_clean(self):
        src = """
            ScalarFunction(
                name="f", arg_types=(), return_type=T,
                fn_scalar=impl, evaluate_batch=kernel,
            )
        """
        assert codes(src) == []

    def test_batch_shadowed_by_vector_flagged(self):
        src = """
            ScalarFunction(
                name="f", arg_types=(), return_type=T,
                fn_scalar=impl, fn_vector=vec, evaluate_batch=kernel,
            )
        """
        violations = run(src)
        assert [c for _, _, c, _ in violations] == ["ANL006"]
        assert "dead code" in violations[0][3]


class TestUnusedImports:
    def test_unused_flagged(self):
        violations = run("import os\n")
        assert [c for _, _, c, _ in violations] == ["ANL007"]
        assert "'os'" in violations[0][3]

    def test_used_clean(self):
        assert codes("import os\nprint(os.sep)\n") == []

    def test_string_annotation_counts_as_use(self):
        src = """
            from stats import QueryStatistics

            def absorb(stats: "QueryStatistics") -> None:
                pass
        """
        assert codes(src) == []

    def test_explicit_reexport_idiom_clean(self):
        assert codes("from mod import thing as thing\n") == []

    def test_all_export_counts_as_use(self):
        src = """
            from mod import thing

            __all__ = ["thing"]
        """
        assert codes(src) == []

    def test_init_py_exempt(self):
        assert codes(
            "from mod import thing\n",
            module="repro.quack",
            filename="__init__.py",
        ) == []


class TestModuleMutableState:
    def test_lowercase_dict_flagged(self):
        violations = run("cache = {}\n")
        assert [c for _, _, c, _ in violations] == ["ANL008"]
        assert "'cache'" in violations[0][3]

    def test_constructor_calls_flagged(self):
        assert codes("memo = dict()\n") == ["ANL008"]
        assert codes("pending = list()\n") == ["ANL008"]
        assert codes("seen = set()\n") == ["ANL008"]

    def test_comprehension_flagged(self):
        assert codes("index = {k: [] for k in KEYS}\n") == ["ANL008"]

    def test_annotated_assignment_flagged(self):
        assert codes("cache: dict = {}\n") == ["ANL008"]

    def test_upper_case_registry_clean(self):
        assert codes("CAST_MEMO = {}\n") == []
        assert codes("_SNAPSHOT_STACK = []\n") == []

    def test_dunder_all_clean(self):
        assert codes('__all__ = ["thing"]\n') == []

    def test_immutable_values_clean(self):
        assert codes("timeout = 5\n") == []
        assert codes("names = ('a', 'b')\n") == []
        assert codes("empty = frozenset()\n") == []

    def test_function_local_mutables_clean(self):
        src = """
            def f():
                cache = {}
                return cache
        """
        assert codes(src) == []

    def test_outside_quack_clean(self):
        assert codes(
            "cache = {}\n",
            module="repro.pgsim.executor",
            filename="executor.py",
        ) == []


class TestTraceEmitGuard:
    def test_unguarded_emit_flagged(self):
        src = """
            def f(ctx, t0, dt):
                ctx.trace.emit("scan", "operator", t0, dt)
        """
        assert codes(src) == ["ANL009"]

    def test_is_not_none_guard_clean(self):
        src = """
            def f(ctx, t0, dt):
                if ctx.trace is not None:
                    ctx.trace.emit("scan", "operator", t0, dt)
        """
        assert codes(src) == []

    def test_local_alias_guard_clean(self):
        src = """
            def f(ctx, t0, dt):
                trace = ctx.trace
                if trace is not None:
                    trace.emit("scan", "operator", t0, dt)
        """
        assert codes(src) == []

    def test_collection_enabled_guard_clean(self):
        src = """
            def f(ctx, t0, dt):
                if collection_enabled():
                    ctx.trace.emit("scan", "operator", t0, dt)
        """
        assert codes(src) == []

    def test_guard_does_not_leak_into_else(self):
        src = """
            def f(ctx, t0, dt):
                if ctx.trace is not None:
                    pass
                else:
                    ctx.trace.emit("scan", "operator", t0, dt)
        """
        assert codes(src) == ["ANL009"]

    def test_guard_resets_at_function_boundary(self):
        src = """
            def f(ctx, t0, dt):
                if ctx.trace is not None:
                    def g():
                        ctx.trace.emit("scan", "operator", t0, dt)
        """
        assert codes(src) == ["ANL009"]

    def test_wrong_receiver_guard_still_flagged(self):
        src = """
            def f(ctx, other, t0, dt):
                if other.trace is not None:
                    ctx.trace.emit("scan", "operator", t0, dt)
        """
        assert codes(src) == ["ANL009"]

    def test_non_trace_emit_ignored(self):
        src = """
            def f(bus, t0):
                bus.emit("event", t0)
        """
        assert codes(src) == []

    def test_observability_modules_exempt(self):
        src = """
            def f(collector, t0, dt):
                collector.emit("scan", "operator", t0, dt)
        """
        assert codes(
            src,
            module="repro.observability.trace",
            filename="trace.py",
        ) == []


class TestSelectivityClamped:
    def test_unclamped_return_flagged(self):
        src = """
            def comparison_selectivity(stats, op, value):
                return 1.0 / max(stats.distinct_count, 1)
        """
        assert codes(src, module="repro.quack.stats",
                     filename="stats.py") == ["ANL010"]

    def test_clamped_return_clean(self):
        src = """
            def comparison_selectivity(stats, op, value):
                return clamp01(1.0 / max(stats.distinct_count, 1))
        """
        assert codes(src, module="repro.quack.stats",
                     filename="stats.py") == []

    def test_attribute_clamp_counts(self):
        src = """
            def overlap_selectivity(stats, probe):
                return table_stats.clamp01(0.5)
        """
        assert codes(src, module="repro.quack.optimizer",
                     filename="optimizer.py") == []

    def test_bare_return_flagged(self):
        src = """
            def between_selectivity(stats, lo, hi):
                if stats is None:
                    return
                return clamp01(0.3)
        """
        assert codes(src, module="repro.quack.stats",
                     filename="stats.py") == ["ANL010"]

    def test_every_return_checked(self):
        src = """
            def equi_join_selectivity(left, right):
                if left is None:
                    return clamp01(0.005)
                return 1.0 / max(left.distinct_count, 1)
        """
        assert codes(src, module="repro.quack.stats",
                     filename="stats.py") == ["ANL010"]

    def test_nested_helper_not_subject(self):
        src = """
            def overlap_selectivity(stats, probe):
                def width(axis):
                    return axis.hi - axis.lo
                return clamp01(width(probe) * 0.1)
        """
        assert codes(src, module="repro.quack.stats",
                     filename="stats.py") == []

    def test_other_function_names_ignored(self):
        src = """
            def estimate_rows(stats):
                return stats.row_count * 3.0
        """
        assert codes(src, module="repro.quack.stats",
                     filename="stats.py") == []
