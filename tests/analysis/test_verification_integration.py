"""Verification mode end-to-end: same answers, extra checking, and
``verify.*`` counters surfaced through EXPLAIN ANALYZE."""

import pytest

from repro import core
from repro.analysis import set_verification_enabled
from repro.pgsim import RowDatabase
from repro.quack import Database

SETUP = [
    "CREATE TABLE t(g INTEGER, v INTEGER, s VARCHAR)",
    "INSERT INTO t SELECT i % 5, i, 'row_' || i"
    " FROM generate_series(1, 200) AS q(i)",
    "CREATE TABLE u(g INTEGER, w DOUBLE)",
    "INSERT INTO u VALUES (0, 1.5), (1, 2.5), (2, 3.5), (9, 9.0)",
]

BATTERY = [
    "SELECT g, count(*), sum(v), min(s) FROM t GROUP BY g ORDER BY g",
    "SELECT DISTINCT g FROM t ORDER BY g DESC",
    "SELECT t.v, u.w FROM t, u WHERE t.g = u.g AND t.v < 20 ORDER BY t.v",
    "SELECT v * 2 AS d FROM t WHERE s LIKE 'row_1%' ORDER BY d LIMIT 7",
    "SELECT upper(s) FROM t WHERE v BETWEEN 10 AND 15 ORDER BY v",
]


def run_battery(make_con):
    con = make_con()
    for stmt in SETUP:
        con.execute(stmt)
    return [con.execute(q).fetchall() for q in BATTERY]


@pytest.mark.parametrize("factory", [
    pytest.param(lambda: Database().connect(), id="quack"),
    pytest.param(lambda: RowDatabase().connect(), id="pgsim"),
])
def test_battery_matches_unverified(factory, verification):
    verified = run_battery(factory)
    set_verification_enabled(False)
    plain = run_battery(factory)
    assert verified == plain


def test_spatial_index_plans_verify(verification):
    con = core.connect()
    con.execute("CREATE TABLE geo(id INTEGER, box STBOX)")
    con.execute("CREATE INDEX rt ON geo USING TRTREE(box)")
    con.execute(
        "INSERT INTO geo SELECT i, ('STBOX X((' || i || ',' || i ||"
        " '),(' || (i + 1) || ',' || (i + 1) || '))')"
        " FROM generate_series(1, 100) AS t(i)"
    )
    rows = con.execute(
        "SELECT id FROM geo WHERE box && "
        "stbox('STBOX X((40,40),(50,50))') ORDER BY id"
    ).fetchall()
    assert [r[0] for r in rows] == list(range(39, 51))
    # Index NL join goes through the batch-probe cross-check.
    pairs = con.execute(
        "SELECT count(*) FROM geo g1, geo g2 WHERE g1.box && g2.box"
    ).scalar()
    assert pairs == 100 + 2 * 99


def test_explain_analyze_reports_verify_counters(verification):
    con = Database().connect()
    for stmt in SETUP:
        con.execute(stmt)
    text = con.explain_analyze(
        "SELECT g, sum(v) FROM t WHERE v > 10 GROUP BY g"
    )
    assert "verify.plans" in text
    assert "verify.chunks_checked" in text


def test_counters_absent_when_disabled():
    con = Database().connect()
    for stmt in SETUP:
        con.execute(stmt)
    text = con.explain_analyze("SELECT g FROM t WHERE v > 10")
    assert "verify." not in text
