"""Seeded-defect tests: each test corrupts a plan, a rewrite, or an
operator output in a distinct way and asserts the verifier not only
catches it but *names the guilty optimizer rule or operator*."""

import numpy as np
import pytest

from repro import core
from repro.analysis import VerificationError
from repro.analysis.verifier import verify_chunk, verify_plan
from repro.quack import Database
from repro.quack.catalog import Table
from repro.quack.functions import ScalarFunction
from repro.quack.optimizer import _Optimizer
from repro.quack.plan import (
    BoundColumnRef,
    BoundConstant,
    BoundFunction,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalProject,
)
from repro.quack.types import DOUBLE, INTEGER, VARCHAR
from repro.quack.vector import DataChunk, Vector


@pytest.fixture
def con():
    db = Database()
    con = db.connect()
    con.execute("CREATE TABLE a(x INTEGER, y INTEGER)")
    con.execute("CREATE TABLE b(x INTEGER, z INTEGER)")
    con.execute("INSERT INTO a VALUES (1, 10), (2, 20)")
    con.execute("INSERT INTO b VALUES (1, 100), (3, 300)")
    return con


@pytest.fixture
def spatial_con():
    con = core.connect()
    con.execute("CREATE TABLE geo(id INTEGER, box STBOX)")
    con.execute("CREATE INDEX rt ON geo USING TRTREE(box)")
    con.execute(
        "INSERT INTO geo SELECT i, ('STBOX X((' || i || ',' || i ||"
        " '),(' || (i + 1) || ',' || (i + 1) || '))')"
        " FROM generate_series(1, 50) AS t(i)"
    )
    return con


JOIN_QUERY = "SELECT * FROM a, b WHERE a.x = b.x AND a.y > 5"


class TestRewriteCorruption:
    """Optimizer rewrites are snapshot-checked; the blame names the
    rule(s) that fired during the corrupted rewrite."""

    def test_dropped_predicate_names_rule(
        self, con, verification, monkeypatch
    ):
        inner = _Optimizer._rewrite_filter_inner

        def strip_leaf_filter(op):
            if isinstance(op, LogicalFilter) and isinstance(
                op.child, LogicalGet
            ):
                return op.child  # the pushed-down conjunct vanishes
            for name in ("left", "right", "child"):
                if hasattr(op, name):
                    setattr(op, name, strip_leaf_filter(getattr(op, name)))
            return op

        def corrupt(self, op):
            return strip_leaf_filter(inner(self, op))

        monkeypatch.setattr(_Optimizer, "_rewrite_filter_inner", corrupt)
        with pytest.raises(VerificationError) as err:
            con.execute(JOIN_QUERY)
        assert "dropped predicate" in str(err.value)
        assert "filter_pushdown" in str(err.value)

    def test_invented_predicate_names_rule(
        self, con, verification, monkeypatch
    ):
        inner = _Optimizer._rewrite_filter_inner

        def corrupt(self, op):
            # Re-apply the original condition on top: every conjunct is
            # now counted twice.
            return LogicalFilter(op.condition, inner(self, op))

        monkeypatch.setattr(_Optimizer, "_rewrite_filter_inner", corrupt)
        with pytest.raises(VerificationError) as err:
            con.execute(JOIN_QUERY)
        assert "invented predicate" in str(err.value)
        assert "optimizer rule" in str(err.value)

    def test_schema_changing_rewrite(self, con, verification, monkeypatch):
        inner = _Optimizer._rewrite_filter_inner

        def corrupt(self, op):
            result = inner(self, op)
            first = result.output_types()[0]
            return LogicalProject(
                exprs=[BoundColumnRef(0, first, result.output_names()[0])],
                names=[result.output_names()[0]],
                child=result,
            )

        monkeypatch.setattr(_Optimizer, "_rewrite_filter_inner", corrupt)
        with pytest.raises(VerificationError) as err:
            con.execute(JOIN_QUERY)
        assert "schema-changing rewrite" in str(err.value)

    def test_bad_index_scan_injection(
        self, spatial_con, verification, monkeypatch
    ):
        from repro.quack.plan import LogicalIndexScan

        inner = _Optimizer._try_push_into_leaf

        def corrupt(self, leaf, conjuncts):
            leaf, remaining = inner(self, leaf, conjuncts)
            if isinstance(leaf, LogicalIndexScan):
                leaf.op_name = "<<broken>>"  # index never advertised this
            return leaf, remaining

        monkeypatch.setattr(_Optimizer, "_try_push_into_leaf", corrupt)
        with pytest.raises(VerificationError) as err:
            spatial_con.execute(
                "SELECT id FROM geo WHERE box && "
                "stbox('STBOX X((10,10),(20,20))')"
            )
        message = str(err.value)
        assert "index_scan_injection" in message
        assert "does not advertise" in message
        assert "rt" in message


class TestPlanCorruption:
    """Hand-corrupted plans fed straight to verify_plan; errors carry the
    operator's EXPLAIN label."""

    def test_dangling_column_binding(self, con):
        table = con.database.catalog.get_table("a")
        plan = LogicalProject(
            exprs=[BoundColumnRef(7, INTEGER, "ghost")],
            names=["ghost"],
            child=LogicalGet(table),
        )
        with pytest.raises(VerificationError) as err:
            verify_plan(plan)
        assert "PROJECTION" in str(err.value)
        assert "dangling column binding #7" in str(err.value)

    def test_unresolved_expression_type(self, con):
        table = con.database.catalog.get_table("a")
        # The filter's own output schema stays valid (it is the child's),
        # so this exercises the per-expression type check.
        plan = LogicalFilter(
            BoundColumnRef(0, None, "x"), LogicalGet(table)
        )
        with pytest.raises(VerificationError) as err:
            verify_plan(plan)
        assert "carries no resolved type" in str(err.value)

    def test_function_missing_from_catalog(self, con):
        table = con.database.catalog.get_table("a")
        ghost = ScalarFunction(
            name="no_such_fn", arg_types=(), return_type=INTEGER
        )
        plan = LogicalProject(
            exprs=[BoundFunction(ghost, [], INTEGER, "no_such_fn")],
            names=["v"],
            child=LogicalGet(table),
        )
        with pytest.raises(VerificationError) as err:
            verify_plan(plan, con.database.functions)
        assert "'no_such_fn' is not in the catalog" in str(err.value)

    def test_non_boolean_filter_condition(self, con):
        table = con.database.catalog.get_table("a")
        plan = LogicalFilter(
            BoundConstant(1, INTEGER), LogicalGet(table)
        )
        with pytest.raises(VerificationError) as err:
            verify_plan(plan)
        assert "filter condition has type INTEGER" in str(err.value)

    def test_index_join_lost_recheck_residual(self, spatial_con):
        table = spatial_con.database.catalog.get_table("geo")
        index = table.indexes[0]
        box_type = table.column_types[1]
        join = LogicalJoin(
            LogicalGet(table),
            LogicalGet(table),
            "inner",
            residual=None,  # the exact recheck is gone
            index_probe=(index, "&&", BoundColumnRef(1, box_type, "box")),
        )
        with pytest.raises(VerificationError) as err:
            verify_plan(join)
        assert "without a recheck residual" in str(err.value)


class TestChunkCorruption:
    """Runtime chunk invariants: every message names the operator."""

    @pytest.fixture
    def get_op(self):
        table = Table("t", [("x", INTEGER), ("y", INTEGER)])
        return LogicalGet(table)

    def test_column_count_mismatch(self, get_op):
        chunk = DataChunk([Vector.from_values(INTEGER, [1, 2])])
        with pytest.raises(VerificationError) as err:
            verify_chunk(get_op, chunk)
        assert "produced 1 columns, schema declares 2" in str(err.value)
        assert "SEQ_SCAN" in str(err.value)

    def test_cardinality_mismatch(self, get_op):
        chunk = DataChunk([
            Vector.from_values(INTEGER, [1, 2, 3]),
            Vector.from_values(INTEGER, [4, 5, 6]),
        ])
        chunk.vectors[1] = Vector.from_values(INTEGER, [4])
        with pytest.raises(VerificationError) as err:
            verify_chunk(get_op, chunk)
        assert "chunk cardinality is 3" in str(err.value)

    def test_validity_mask_length(self, get_op):
        chunk = DataChunk([
            Vector.from_values(INTEGER, [1, 2, 3]),
            Vector.from_values(INTEGER, [4, 5, 6]),
        ])
        chunk.vectors[0].validity = np.ones(2, dtype=np.bool_)
        with pytest.raises(VerificationError) as err:
            verify_chunk(get_op, chunk)
        assert "validity mask has 2 entries for 3 rows" in str(err.value)

    def test_physical_type_mismatch(self, get_op):
        chunk = DataChunk([
            Vector.from_values(DOUBLE, [1.0, 2.0]),
            Vector.from_values(INTEGER, [4, 5]),
        ])
        with pytest.raises(VerificationError) as err:
            verify_chunk(get_op, chunk)
        assert "physically float64, schema declares INTEGER" in str(
            err.value
        )

    def test_stale_aux_cache_detected(self, verification):
        vector = Vector.from_values(VARCHAR, ["a", "b", "c"])
        vector.cached_aux("upper", lambda v: [s.upper() for s in v.data])
        vector.data[1] = "z"  # in-place mutation stales the cached view
        with pytest.raises(VerificationError) as err:
            vector.verify_aux_fresh("test site")
        assert "stale _aux cache in test site" in str(err.value)

    def test_fresh_aux_cache_passes(self, verification):
        vector = Vector.from_values(VARCHAR, ["a", "b"])
        vector.cached_aux("upper", lambda v: [s.upper() for s in v.data])
        vector.verify_aux_fresh("test site")  # no mutation: fine


class TestKernelCrosscheck:
    def test_divergent_batch_kernel_names_function(self, verification):
        broken = ScalarFunction(
            name="broken_batch",
            arg_types=(INTEGER,),
            return_type=INTEGER,
            fn_scalar=lambda x: x + 1,
            evaluate_batch=lambda args, count: Vector.from_values(
                INTEGER, [0] * count
            ),
        )
        with pytest.raises(VerificationError) as err:
            broken.evaluate([Vector.from_values(INTEGER, [1, 2, 3])], 3)
        message = str(err.value)
        assert "kernel/fallback divergence" in message
        assert "'broken_batch' evaluate_batch" in message

    def test_honest_batch_kernel_passes(self, verification):
        honest = ScalarFunction(
            name="honest_batch",
            arg_types=(INTEGER,),
            return_type=INTEGER,
            fn_scalar=lambda x: x + 1,
            evaluate_batch=lambda args, count: Vector.from_values(
                INTEGER, [int(v) + 1 for v in args[0].data]
            ),
        )
        result = honest.evaluate([Vector.from_values(INTEGER, [1, 2])], 2)
        assert result.to_list() == [2, 3]


class TestCounterRegistry:
    def test_undeclared_counter_rejected(self, verification):
        from repro.observability import QueryStatistics

        stats = QueryStatistics()
        stats.bump("verify.plans")  # declared: fine
        stats.bump("optimizer.rule.whatever")  # declared prefix: fine
        with pytest.raises(VerificationError) as err:
            stats.bump("verify.bogus_counter")
        assert "verify.bogus_counter" in str(err.value)
