"""BerlinMOD-Hanoi generator tests (paper §5, Tables 2/3)."""

import pytest

from repro import geo
from repro.berlinmod import (
    Dataset,
    ScaleParams,
    generate,
    make_districts,
)
from repro.berlinmod.network import SPEED_KMH, make_network
from repro.berlinmod.regions import population_weights
from repro.meos.temporal import Interp


class TestScaleParams:
    """The paper's vehicle/day counts must reproduce exactly."""

    @pytest.mark.parametrize(
        "sf,vehicles",
        [(0.001, 63), (0.002, 89), (0.005, 141), (0.01, 200),
         (0.02, 283), (0.05, 447), (0.1, 632)],
    )
    def test_vehicle_counts_match_paper(self, sf, vehicles):
        assert ScaleParams.for_scale(sf).vehicles == vehicles

    @pytest.mark.parametrize(
        "sf,days", [(0.01, 5), (0.02, 6), (0.05, 8), (0.1, 11)]
    )
    def test_day_counts_match_paper_table2(self, sf, days):
        assert ScaleParams.for_scale(sf).days == days


class TestDistricts:
    def test_twelve_districts(self):
        districts = make_districts()
        assert len(districts) == 12
        names = {d.name for d in districts}
        assert "Hai Ba Trung" in names
        assert "Hoan Kiem" in names

    def test_polygons_valid(self):
        for d in make_districts():
            assert d.geom.area() > 1e6  # at least 1 km^2
            assert geo.point_in_polygon(
                (d.center.x, d.center.y), d.geom
            )

    def test_population_weights_normalized(self):
        weights = population_weights(make_districts())
        assert sum(weights) == pytest.approx(1.0)

    def test_deterministic(self):
        assert make_districts(1) == make_districts(1)


class TestNetwork:
    def test_connected(self):
        import networkx as nx

        net = make_network(make_districts())
        assert nx.is_connected(net.graph)

    def test_road_categories_present(self):
        net = make_network(make_districts())
        categories = {
            data["category"]
            for _, _, data in net.graph.edges(data=True)
        }
        assert categories == {"sidestreet", "mainstreet", "freeway"}

    def test_edge_weights_consistent(self):
        net = make_network(make_districts())
        for _, _, data in net.graph.edges(data=True):
            expected = data["length"] / data["speed"]
            assert data["seconds"] == pytest.approx(expected)
            assert data["speed"] == pytest.approx(
                SPEED_KMH[data["category"]] / 3.6
            )

    def test_shortest_path_exists(self):
        net = make_network(make_districts())
        nodes = sorted(net.graph.nodes)
        path = net.shortest_path(nodes[0], nodes[-1])
        assert path is not None
        assert path[0] == nodes[0]
        assert path[-1] == nodes[-1]

    def test_nearest_node(self):
        net = make_network(make_districts())
        node = net.nearest_node(0.0, 0.0)
        x, y = net.node_position(node)
        assert abs(x) < 2000 and abs(y) < 2000


class TestGeneratedDataset:
    @pytest.fixture(scope="class")
    def dataset(self) -> Dataset:
        return generate(0.001)

    def test_vehicle_count(self, dataset):
        assert len(dataset.vehicles) == 63

    def test_trip_count_near_paper(self, dataset):
        # Paper Table 3: 549 trips at SF 0.001; the generator is
        # stochastic but must land within 15%.
        assert 549 * 0.85 <= len(dataset.trips) <= 549 * 1.15

    def test_trips_sorted_instants(self, dataset):
        for trip in dataset.trips[:50]:
            times = trip.trip.timestamps()
            assert times == sorted(times)
            assert trip.trip.interp is Interp.LINEAR

    def test_trip_on_day(self, dataset):
        for trip in dataset.trips[:50]:
            from repro.meos.timetypes import timestamptz_to_datetime

            start = timestamptz_to_datetime(trip.trip.start_timestamp())
            assert start.date() == trip.day

    def test_trajectories_match_trips(self, dataset):
        from repro.meos import trajectory

        for trip in dataset.trips[:20]:
            assert trip.traj == trajectory(trip.trip)

    def test_vehicle_types_mostly_passenger(self, dataset):
        passenger = sum(
            1 for v in dataset.vehicles if v.vehicle_type == "passenger"
        )
        assert passenger / len(dataset.vehicles) > 0.7

    def test_licences_unique(self, dataset):
        licences = [v.licence for v in dataset.vehicles]
        assert len(set(licences)) == len(licences)

    def test_deterministic(self):
        a = generate(0.001, seed=99)
        b = generate(0.001, seed=99)
        assert len(a.trips) == len(b.trips)
        assert a.trips[0].trip == b.trips[0].trip

    def test_different_seeds_differ(self):
        a = generate(0.001, seed=1)
        b = generate(0.001, seed=2)
        assert a.trips[0].trip != b.trips[0].trip

    def test_size_grows_with_scale(self, dataset):
        bigger = generate(0.002)
        assert bigger.approx_size_bytes() > dataset.approx_size_bytes()

    def test_speeds_physically_plausible(self, dataset):
        from repro.meos import speed

        for trip in dataset.trips[:30]:
            sp = speed(trip.trip)
            if sp is None:
                continue
            # max road speed is 70 km/h with a 1.15 perturbation cap
            assert sp.max_value() <= 70 / 3.6 * 1.2 + 1e-6


class TestExports:
    def test_geojson_structure(self):
        from repro.berlinmod import regions_to_geojson, trips_to_geojson

        dataset = generate(0.001)
        trips = trips_to_geojson(dataset)
        assert trips["type"] == "FeatureCollection"
        assert len(trips["features"]) == len(dataset.trips)
        feature = trips["features"][0]
        assert feature["geometry"]["type"] == "LineString"
        assert len(feature["geometry"]["coordinates"][0]) == 4  # x,y,z,t

        regions = regions_to_geojson(dataset)
        assert len(regions["features"]) == 12
        assert regions["features"][0]["properties"]["population"] > 0
