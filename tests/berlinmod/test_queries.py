"""BerlinMOD benchmark query integration tests.

Loads a small dataset into both engines and validates that each of the
17 queries runs and returns identical rows (the correctness backbone of
the Figure 12 comparison).
"""

import pytest

from repro import core
from repro.berlinmod import (
    QUERIES,
    create_baseline_indexes,
    generate,
    get_query,
    load_dataset,
)

#: SF small enough for CI-speed runs but with non-trivial results.
_SF = 0.001


@pytest.fixture(scope="module")
def dataset():
    return generate(_SF, spacing_m=1200.0)


@pytest.fixture(scope="module")
def duck(dataset):
    con = core.connect()
    load_dataset(con, dataset)
    return con


@pytest.fixture(scope="module")
def baseline(dataset):
    con = core.connect_baseline()
    load_dataset(con, dataset)
    return con


@pytest.fixture(scope="module")
def baseline_indexed(dataset):
    con = core.connect_baseline()
    load_dataset(con, dataset)
    create_baseline_indexes(con)
    return con


class TestSchema:
    def test_tables_loaded(self, duck, dataset):
        assert duck.execute("SELECT count(*) FROM Vehicles").scalar() == \
            len(dataset.vehicles)
        assert duck.execute("SELECT count(*) FROM Trips").scalar() == \
            len(dataset.trips)
        assert duck.execute("SELECT count(*) FROM hanoi").scalar() == 12
        for table, rows in (
            ("Licences1", 10), ("Licences2", 10), ("Instants1", 10),
            ("Periods1", 10), ("Points1", 10), ("Regions1", 10),
            ("Instants", 100), ("Periods", 100), ("Points", 100),
            ("Regions", 100),
        ):
            assert duck.execute(
                f"SELECT count(*) FROM {table}"
            ).scalar() == rows

    def test_samples_disjoint(self, duck):
        got = duck.execute(
            "SELECT count(*) FROM Licences1 l1, Licences2 l2 "
            "WHERE l1.VehicleId = l2.VehicleId"
        ).scalar()
        assert got == 0


class TestQueriesRunOnDuck:
    @pytest.mark.parametrize("number", [q.number for q in QUERIES])
    def test_query_runs(self, duck, number):
        query = get_query(number)
        result = duck.execute(query.sql)
        assert result.column_names  # has a shape
        # Sanity: queries 1/2 always return rows on any dataset.
        if number in (1, 2):
            assert len(result) >= 1

    def test_query5_variants_agree(self, duck):
        query = get_query(5)
        standard = duck.execute(query.sql).fetchall()
        optimized = duck.execute(query.optimized_sql).fetchall()
        assert len(standard) == len(optimized) == 100
        for (l1, l2, d1), (m1, m2, d2) in zip(standard, optimized):
            assert (l1, l2) == (m1, m2)
            assert d1 == pytest.approx(d2, abs=1e-6)


class TestCrossEngine:
    """MobilityDuck and the MobilityDB baseline must agree row-for-row."""

    # Q5 standard variant is slow on the baseline; compare the cheap ones
    # plus representative spatiotemporal ones.
    NUMBERS = [1, 2, 3, 4, 6, 7, 8, 11, 13, 14, 15, 17]

    @pytest.mark.parametrize("number", NUMBERS)
    def test_same_rows_without_indexes(self, duck, baseline, number):
        query = get_query(number)
        a = duck.execute(query.sql).fetchall()
        b = baseline.execute(query.sql).fetchall()
        assert _comparable(a) == _comparable(b), f"Q{number} differs"

    @pytest.mark.parametrize("number", [4, 6, 13, 15])
    def test_same_rows_with_indexes(self, duck, baseline_indexed, number):
        query = get_query(number)
        a = duck.execute(query.sql).fetchall()
        b = baseline_indexed.execute(query.sql).fetchall()
        assert _comparable(a) == _comparable(b), f"Q{number} differs"

    def test_query10_periods_agree(self, duck, baseline_indexed):
        query = get_query(10)
        a = duck.execute(query.sql).fetchall()
        b = baseline_indexed.execute(query.sql).fetchall()
        assert [(r[0], r[1], str(r[2])) for r in a] == \
            [(r[0], r[1], str(r[2])) for r in b]


def _comparable(rows):
    """Stringify temporal/geometry values for cross-engine comparison."""
    out = []
    for row in rows:
        out.append(
            tuple(
                str(v) if not isinstance(v, (int, float, str, type(None)))
                else (round(v, 6) if isinstance(v, float) else v)
                for v in row
            )
        )
    return out
