"""Benchmark runner API tests."""

import pytest

from repro.berlinmod import (
    BenchmarkReport,
    CellResult,
    run_benchmark,
)


class TestReport:
    def _report(self):
        report = BenchmarkReport()
        report.cells = [
            CellResult(0.001, 1, "mobilityduck", 0.1, 5),
            CellResult(0.001, 1, "mobilitydb", 0.3, 5),
            CellResult(0.001, 1, "mobilitydb_idx", 0.2, 5),
            CellResult(0.001, 2, "mobilityduck", 0.4, 1),
            CellResult(0.001, 2, "mobilitydb", 0.2, 1),
        ]
        return report

    def test_get(self):
        report = self._report()
        assert report.get(0.001, 1, "mobilityduck").seconds == 0.1
        assert report.get(0.001, 9, "mobilityduck") is None

    def test_win_ratio(self):
        assert self._report().win_ratio() == 0.5

    def test_format_grid(self):
        text = self._report().format_grid()
        assert "Q1" in text and "Q2" in text
        assert "50%" in text

    def test_scale_factors_and_queries(self):
        report = self._report()
        assert report.scale_factors() == [0.001]
        assert report.queries() == [1, 2]


class TestRunBenchmark:
    @pytest.fixture(scope="class")
    def report(self):
        return run_benchmark(scale_factors=[0.001], queries=[1, 2, 3, 8])

    def test_all_cells_present(self, report):
        assert len(report.cells) == 4 * 3

    def test_rows_agree_across_scenarios(self, report):
        for q in report.queries():
            counts = {
                report.get(0.001, q, s).rows
                for s in ("mobilityduck", "mobilitydb", "mobilitydb_idx")
            }
            assert len(counts) == 1

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_benchmark(scale_factors=[0.001], queries=[1],
                          scenarios=("nope",))

    def test_timings_positive(self, report):
        assert all(cell.seconds >= 0 for cell in report.cells)
