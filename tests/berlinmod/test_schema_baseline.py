"""Schema loading on the row-store baseline + index DDL."""

import pytest

from repro import core
from repro.berlinmod import (
    BASELINE_INDEX_DDL,
    create_baseline_indexes,
    generate,
    load_dataset,
)
from repro.pgsim.table import Varlena


@pytest.fixture(scope="module")
def dataset():
    return generate(0.001, spacing_m=1500.0)


@pytest.fixture(scope="module")
def baseline(dataset):
    con = core.connect_baseline()
    load_dataset(con, dataset)
    return con


class TestBaselineSchema:
    def test_row_counts(self, baseline, dataset):
        assert baseline.execute(
            "SELECT count(*) FROM Trips"
        ).scalar() == len(dataset.trips)
        assert baseline.execute(
            "SELECT count(*) FROM hanoi"
        ).scalar() == 12

    def test_trips_are_toasted(self, baseline):
        table = baseline.database.catalog.get_table("Trips")
        trip_col = table.column_index("Trip")
        assert isinstance(table.rows[0][trip_col], Varlena)

    def test_trip_values_load_correctly(self, baseline, dataset):
        got = baseline.execute(
            "SELECT numInstants(Trip) FROM Trips WHERE TripId = 1"
        ).scalar()
        assert got == dataset.trips[0].trip.num_instants()

    def test_indexes_created(self, baseline):
        create_baseline_indexes(baseline)
        names = set(baseline.database.catalog.indexes)
        assert "trips_trip_gist" in names
        assert "trips_vehicle_btree" in names
        assert len(names) >= len(BASELINE_INDEX_DDL)

    def test_gist_index_used_and_correct(self, baseline):
        box = baseline.execute(
            "SELECT expandSpace(Trip::STBOX, 10.0)::VARCHAR FROM Trips "
            "WHERE TripId = 1"
        ).scalar()
        query = (f"SELECT count(*) FROM Trips WHERE Trip && "
                 f"stbox('{box}')")
        plan = baseline.explain(query)
        assert "GIST_INDEX_SCAN" in plan
        with_index = baseline.execute(query).scalar()

        plain = core.connect_baseline()
        load_dataset(plain, generate(0.001, spacing_m=1500.0))
        assert plain.execute(query).scalar() == with_index

    def test_btree_speeds_vehicle_lookup(self, baseline):
        plan = baseline.explain(
            "SELECT count(*) FROM Trips WHERE VehicleId = 5"
        )
        assert "BTREE_INDEX_SCAN" in plan
