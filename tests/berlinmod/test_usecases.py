"""The six §6.2 use-case operations (Figures 6–11) as integration tests.

Operations (4) and (6) run the paper's SQL verbatim (including the
``::WKB_BLOB`` proxy casts and the trailing comma of query 6).
"""

import pytest

from repro import core
from repro.berlinmod import generate, load_dataset


@pytest.fixture(scope="module")
def con():
    dataset = generate(0.001, spacing_m=1200.0)
    connection = core.connect()
    load_dataset(connection, dataset)
    return connection


class TestUseCases:
    def test_op1_all_trajectories(self, con):
        """(1) Show the trajectories of all trips (Figure 6)."""
        rows = con.execute(
            "SELECT t.VehicleId, t.TripId, ST_AsText(t.Traj) AS Traj "
            "FROM trajectories t"
        )
        assert len(rows) == con.execute(
            "SELECT count(*) FROM trajectories"
        ).scalar()
        assert all(
            row[2].startswith(("LINESTRING", "POINT", "MULTILINESTRING",
                               "GEOMETRYCOLLECTION"))
            for row in rows
        )

    def test_op2_max_district_crossings(self, con):
        """(2) Trip(s) crossing the highest number of districts (Fig 7)."""
        rows = con.execute(
            """
            WITH Crossings AS (
              SELECT t.TripId, count(*) AS Districts
              FROM trajectories t, hanoi h
              WHERE ST_Intersects(t.Traj, h.Geom)
              GROUP BY t.TripId )
            SELECT TripId, Districts FROM Crossings
            WHERE Districts = (SELECT max(Districts) FROM Crossings)
            """
        )
        assert len(rows) >= 1
        top = rows.fetchone()[1]
        assert 1 <= top <= 12

    def test_op3_hai_ba_trung(self, con):
        """(3) Trips crossing the Hai Ba Trung district (Figure 8)."""
        got = con.execute(
            """
            SELECT count(*) FROM trajectories t, hanoi h
            WHERE h.MunicipalityName = 'Hai Ba Trung'
              AND ST_Intersects(t.Traj, h.Geom)
            """
        ).scalar()
        assert got >= 0  # data dependent; must simply execute

    def test_op4_distance_per_district_paper_sql(self, con):
        """(4) Total distance per district — the paper's SQL verbatim."""
        rows = con.execute(
            """
            SELECT h.municipalityname, round(
              ( sum(length(atGeometry(t.trip, h.geom::WKB_BLOB)) ) /
              1000)::numeric, 3) AS total_km
            FROM trajectories t, hanoi h
            WHERE ST_Intersects(t.traj, h.geom)
            GROUP BY h.municipalityname
            """
        )
        assert len(rows) >= 6
        for name, km in rows:
            assert km is None or km >= 0

    def test_op4_distances_bounded_by_total(self, con):
        total_km = con.execute(
            "SELECT sum(length(Trip)) / 1000 FROM trajectories"
        ).scalar()
        per_district = con.execute(
            """
            SELECT sum(length(atGeometry(t.Trip, h.Geom::WKB_BLOB))) / 1000
            FROM trajectories t, hanoi h
            WHERE ST_Intersects(t.Traj, h.Geom)
            """
        ).scalar()
        # Districts overlap slightly (jittered polygons), so allow a small
        # margin above the raw total.
        assert per_district <= total_km * 1.2

    def test_op5_top6_districts(self, con):
        """(5) Top 6 districts by crossing trips (Figure 10)."""
        rows = con.execute(
            """
            SELECT h.MunicipalityName, count(*) AS trips
            FROM trajectories t, hanoi h
            WHERE ST_Intersects(t.Traj, h.Geom)
              AND atGeometry(t.Trip, h.Geom::WKB_BLOB) IS NOT NULL
            GROUP BY h.MunicipalityName
            ORDER BY trips DESC, h.MunicipalityName
            LIMIT 6
            """
        ).fetchall()
        assert len(rows) == 6
        counts = [r[1] for r in rows]
        assert counts == sorted(counts, reverse=True)

    def test_op6_close_pairs_paper_sql(self, con):
        """(6) Pairs within 10 m — the paper's SQL verbatim (Fig 11)."""
        rows = con.execute(
            """
            SELECT DISTINCT t1.VehicleId AS VehicleId1,
              t1.TripId AS TripId1, ST_ASText(t1.Traj) AS Traj1,
              t2.VehicleId AS VehicleId2, t2.TripId AS TripId2,
              ST_ASText(t2.Traj) AS Traj2,
            FROM (SELECT * FROM trajectories t1 LIMIT 100) t1,
              (SELECT * FROM trajectories t2 LIMIT 100) t2
            WHERE t1.VehicleId < t2.VehicleId AND
              eDwithin(t1.Trip, t2.Trip, 10.0)
            ORDER BY t1.VehicleId, t2.VehicleId
            """
        )
        for row in rows:
            assert row[0] < row[3]

    def test_op6_pairs_actually_close(self, con):
        """Every returned pair is verified against nearestApproachDistance."""
        rows = con.execute(
            """
            SELECT t1.TripId, t2.TripId,
              nearestApproachDistance(t1.Trip, t2.Trip) AS nad
            FROM (SELECT * FROM trajectories t1 LIMIT 50) t1,
              (SELECT * FROM trajectories t2 LIMIT 50) t2
            WHERE t1.VehicleId < t2.VehicleId AND
              eDwithin(t1.Trip, t2.Trip, 10.0)
            """
        )
        for _, _, nad in rows:
            assert nad is not None and nad <= 10.0 + 1e-6
