"""Shared test configuration.

Setting ``REPRO_VERIFICATION=1`` runs the whole suite with the
verification layer enabled (chunk checks, rewrite checks, kernel
cross-checks) — the slow CI job; the default run leaves it off.
"""

import os

from repro.analysis import set_verification_enabled

if os.environ.get("REPRO_VERIFICATION") == "1":
    set_verification_enabled(True)
