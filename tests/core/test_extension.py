"""MobilityDuck extension tests: registration, casts, paper §3.5 queries."""

import pytest

from repro import core
from repro.core.types import TYPE_COVERAGE
from repro.quack import BinderError, Database


@pytest.fixture(scope="module")
def con():
    return core.connect()


class TestLoading:
    def test_extension_name_recorded(self):
        db = Database()
        db.load_extension(core.extension)
        assert "mobilityduck" in db.loaded_extensions or any(
            "extension" in name for name in db.loaded_extensions
        )

    def test_spatial_loaded_implicitly(self, con):
        assert con.database.types.known("GEOMETRY")

    def test_trtree_registered(self, con):
        assert con.database.config.index_types.known("TRTREE")


class TestTable1Coverage:
    """Paper Table 1: green cells registered, white cells absent."""

    @pytest.mark.parametrize(
        "base,template",
        [
            (base, template)
            for base, row in TYPE_COVERAGE.items()
            for template, status in row.items()
            if status == "duck"
        ],
    )
    def test_supported_types_registered(self, con, base, template):
        name = _type_name(base, template)
        assert con.database.types.known(name), name

    @pytest.mark.parametrize(
        "base,template",
        [
            (base, template)
            for base, row in TYPE_COVERAGE.items()
            for template, status in row.items()
            if status == "mobilitydb"
        ],
    )
    def test_upstream_only_types_absent(self, con, base, template):
        name = _type_name(base, template)
        assert not con.database.types.known(name), name


def _type_name(base: str, template: str) -> str:
    short = {
        "integer": "int",
        "timestamptz": "tstz",
        "geometry": "geom",
        "geography": "geog",
        "bool": "bool",
    }.get(base, base)
    if template == "set":
        return f"{short}set"
    if template == "span":
        return f"{short}span"
    if template == "spanset":
        return f"{short}spanset"
    mapping = {
        "bool": "tbool", "integer": "tint", "float": "tfloat",
        "text": "ttext", "geometry": "tgeompoint",
        "geography": "tgeogpoint", "pose": "tpose", "npoint": "tnpoint",
        "cbuffer": "tcbuffer",
    }
    return mapping[base]


class TestPaperSampleQueries:
    """Every §3.5 sample query, with the paper's expected outputs."""

    def test_duration(self, con):
        got = con.execute(
            "SELECT duration('{1@2025-01-01, 2@2025-01-02, "
            "1@2025-01-03}'::TINT, true)"
        ).scalar()
        assert str(got) == "2 days"

    def test_shift_scale(self, con):
        got = con.execute(
            "SELECT shiftScale(tstzset '{2025-01-01, 2025-01-02}', "
            "interval '1 day', interval '1 hour')::VARCHAR"
        ).scalar()
        assert got == "{2025-01-02 00:00:00+00, 2025-01-02 01:00:00+00}"

    def test_transform_geomset(self, con):
        got = con.execute(
            "SELECT asEWKT(transform(geomset 'SRID=4326;"
            "{Point(2.340088 49.400250), Point(6.575317 51.553167)}', "
            "3812), 6)"
        ).scalar()
        assert got.startswith('SRID=3812;{"POINT(502773.4')
        assert '"POINT(803028.8' in got

    def test_expand_space(self, con):
        got = con.execute(
            "SELECT expandSpace(stbox 'STBOX XT(((1.0,2.0),(1.0,2.0)),"
            "[2025-01-01,2025-01-01])', 2.0)::VARCHAR"
        ).scalar()
        assert got == (
            "STBOX XT(((-1,0),(3,4)),[2025-01-01 00:00:00+00, "
            "2025-01-01 00:00:00+00])"
        )

    def test_expand_time(self, con):
        got = con.execute(
            "SELECT expandTime(tbox 'TBOXFLOAT XT([1.0,2.0],"
            "[2025-01-01,2025-01-02])', interval '1 day')::VARCHAR"
        ).scalar()
        assert got == (
            "TBOXFLOAT XT([1, 2],[2024-12-31 00:00:00+00, "
            "2025-01-03 00:00:00+00])"
        )

    def test_tgeometry_constructor(self, con):
        got = con.execute(
            "SELECT asEWKT(tgeometry('Point(1 1)', "
            "tstzspan '[2025-01-01, 2025-01-02]', 'step'))"
        ).scalar()
        assert got == (
            "[POINT(1 1)@2025-01-01 00:00:00+00, "
            "POINT(1 1)@2025-01-02 00:00:00+00]"
        )

    def test_overlaps_operator(self, con):
        got = con.execute(
            "SELECT tgeompoint '{[Point(1 1)@2025-01-01, "
            "Point(2 2)@2025-01-02, Point(1 1)@2025-01-03],"
            "[Point(3 3)@2025-01-04, Point(3 3)@2025-01-05]}' "
            "&& stbox 'STBOX X((10.0,20.0),(10.0,20.0))'"
        ).scalar()
        assert got is False

    def test_at_time(self, con):
        got = con.execute(
            "SELECT asText(atTime(tgeompoint "
            "'{[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02, "
            "Point(1 1)@2025-01-03],[Point(3 3)@2025-01-04, "
            "Point(3 3)@2025-01-05]}', "
            "tstzspan '[2025-01-01,2025-01-02]'))"
        ).scalar()
        assert got == (
            "{[POINT(1 1)@2025-01-01 00:00:00+00, "
            "POINT(2 2)@2025-01-02 00:00:00+00]}"
        )


class TestCasts:
    def test_varchar_to_temporal_and_back(self, con):
        got = con.execute(
            "SELECT ('[1@2025-01-01, 2@2025-01-02]'::TFLOAT)::VARCHAR"
        ).scalar()
        assert got == ("[1@2025-01-01 00:00:00+00, "
                       "2@2025-01-02 00:00:00+00]")

    def test_trip_to_tstzspan(self, con):
        got = con.execute(
            "SELECT (tgeompoint '[Point(0 0)@2025-01-01, "
            "Point(1 1)@2025-01-02]')::tstzspan::VARCHAR"
        ).scalar()
        assert got == ("[2025-01-01 00:00:00+00, "
                       "2025-01-02 00:00:00+00]")

    def test_trip_to_stbox(self, con):
        got = con.execute(
            "SELECT (tgeompoint '[Point(0 0)@2025-01-01, "
            "Point(2 4)@2025-01-02]')::STBOX"
        ).scalar()
        assert got.xmax == 2.0
        assert got.ymax == 4.0

    def test_tint_tfloat_roundtrip(self, con):
        got = con.execute(
            "SELECT ('{1@2025-01-01, 2@2025-01-02}'::TINT)"
            "::TFLOAT::VARCHAR"
        ).scalar()
        assert got == ("{1@2025-01-01 00:00:00+00, "
                       "2@2025-01-02 00:00:00+00}")

    def test_intset_floatset(self, con):
        got = con.execute(
            "SELECT ('{1, 2}'::intset)::floatset::VARCHAR"
        ).scalar()
        assert got == "{1, 2}"

    def test_dateset_tstzset(self, con):
        got = con.execute(
            "SELECT ('{2025-01-01}'::dateset)::tstzset::VARCHAR"
        ).scalar()
        assert got == "{2025-01-01 00:00:00+00}"


class TestOperators:
    def test_span_contains_timestamp(self, con):
        assert con.execute(
            "SELECT tstzspan '[2025-01-01, 2025-01-03]' @> "
            "'2025-01-02'::TIMESTAMPTZ"
        ).scalar() is True

    def test_span_overlap(self, con):
        assert con.execute(
            "SELECT tstzspan '[2025-01-01, 2025-01-03]' && "
            "tstzspan '[2025-01-02, 2025-01-05]'"
        ).scalar() is True

    def test_intspan_value_ops(self, con):
        assert con.execute(
            "SELECT intspan '[1, 10]' @> 5"
        ).scalar() is True
        assert con.execute(
            "SELECT intspan '[1, 3]' << intspan '[5, 8]'"
        ).scalar() is True

    def test_stbox_operators(self, con):
        assert con.execute(
            "SELECT stbox 'STBOX X((0,0),(10,10))' @> "
            "stbox 'STBOX X((1,1),(2,2))'"
        ).scalar() is True

    def test_temporal_overlaps_span(self, con):
        assert con.execute(
            "SELECT tgeompoint '[Point(0 0)@2025-01-01, "
            "Point(1 1)@2025-01-02]' && tstzspan "
            "'[2025-01-01 12:00:00, 2025-01-05]'"
        ).scalar() is True


class TestFunctionsThroughSql:
    def test_when_true_tdwithin(self, con):
        got = con.execute(
            "SELECT whenTrue(tDwithin("
            "tgeompoint '[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]',"
            "tgeompoint '[Point(10 0)@2025-01-01, Point(0 0)@2025-01-02]',"
            "2.0))::VARCHAR"
        ).scalar()
        assert got == ("{[2025-01-01 09:36:00+00, "
                       "2025-01-01 14:24:00+00]}")

    def test_edwithin(self, con):
        assert con.execute(
            "SELECT eDwithin("
            "tgeompoint '[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]',"
            "tgeompoint '[Point(0 5)@2025-01-01, Point(10 5)@2025-01-02]',"
            "1.0)"
        ).scalar() is False

    def test_trajectory_and_length(self, con):
        got = con.execute(
            "SELECT ST_AsText(trajectory(tgeompoint "
            "'[Point(0 0)@2025-01-01, Point(3 4)@2025-01-02]')::GEOMETRY)"
        ).scalar()
        assert got == "LINESTRING(0 0, 3 4)"
        assert con.execute(
            "SELECT length(tgeompoint '[Point(0 0)@2025-01-01, "
            "Point(3 4)@2025-01-02]')"
        ).scalar() == 5.0

    def test_value_at_timestamp(self, con):
        got = con.execute(
            "SELECT ST_AsText(valueAtTimestamp(tgeompoint "
            "'[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]', "
            "'2025-01-02'::TIMESTAMPTZ)::GEOMETRY)"
        ).scalar()
        assert got == "POINT(5 0)"

    def test_at_values_wkb(self, con):
        got = con.execute(
            "SELECT startTimestamp(atValues(tgeompoint "
            "'[Point(0 0)@2025-01-01, Point(10 0)@2025-01-03]', "
            "ST_GeomFromText('POINT(5 0)')::WKB_BLOB))"
        ).scalar()
        from repro.meos.timetypes import parse_timestamptz

        assert got == parse_timestamptz("2025-01-02")

    def test_gserialized_fast_path(self, con):
        got = con.execute(
            "SELECT distance_gs("
            "trajectory_gs(tgeompoint '[Point(0 0)@2025-01-01, "
            "Point(0 1)@2025-01-02]'), "
            "trajectory_gs(tgeompoint '[Point(3 0)@2025-01-01, "
            "Point(3 1)@2025-01-02]'))"
        ).scalar()
        assert got == 3.0

    def test_collect_gs_over_list(self, con):
        con.execute("CREATE OR REPLACE TABLE trips_tmp(t TGEOMPOINT)")
        con.execute(
            "INSERT INTO trips_tmp VALUES "
            "('[Point(0 0)@2025-01-01, Point(1 0)@2025-01-02]'),"
            "('[Point(5 5)@2025-01-01, Point(6 5)@2025-01-02]')"
        )
        got = con.execute(
            "SELECT asText_gs(collect_gs(list(trajectory_gs(t)))) "
            "FROM trips_tmp"
        ).scalar()
        assert got.startswith("MULTILINESTRING")

    def test_extent_aggregate(self, con):
        con.execute("CREATE OR REPLACE TABLE trips_tmp2(t TGEOMPOINT)")
        con.execute(
            "INSERT INTO trips_tmp2 VALUES "
            "('[Point(0 0)@2025-01-01, Point(1 1)@2025-01-02]'),"
            "('[Point(5 5)@2025-01-03, Point(9 9)@2025-01-04]')"
        )
        box = con.execute("SELECT extent(t) FROM trips_tmp2").scalar()
        assert box.xmin == 0.0
        assert box.xmax == 9.0

    def test_tgeompoint_seq_assembly(self, con):
        con.execute("CREATE OR REPLACE TABLE obs(p TGEOMPOINT)")
        con.execute(
            "INSERT INTO obs SELECT tgeompoint(ST_Point(i * 1.0, 0.0), "
            "('2025-01-01'::TIMESTAMP + INTERVAL (i || ' hours'))) "
            "FROM generate_series(1, 5) AS t(i)"
        )
        got = con.execute(
            "SELECT numInstants(tgeompointSeq(list(p))) FROM obs"
        ).scalar()
        assert got == 2  # collinear instants normalize away

    def test_geometry_of_stbox(self, con):
        got = con.execute(
            "SELECT ST_AsText(geometry(stbox 'STBOX X((0,0),(2,2))')"
            "::GEOMETRY)"
        ).scalar()
        assert got.startswith("POLYGON")
