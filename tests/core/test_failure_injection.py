"""Failure injection: malformed inputs must fail loudly, not corrupt."""

import pytest

from repro import core
from repro.quack import (
    BinderError,
    CatalogError,
    ConversionError,
    ExecutionError,
    ParserError,
    QuackError,
)


@pytest.fixture(scope="module")
def con():
    return core.connect()


class TestBadLiterals:
    @pytest.mark.parametrize(
        "literal,type_name",
        [
            ("not a box", "STBOX"),
            ("STBOX Y((1,2),(3,4))", "STBOX"),
            ("{1, 2", "intset"),
            ("[5, 3]", "floatspan"),
            ("[1@nonsense]", "tint"),
            ("Point(1)@2025-01-01", "tgeompoint"),
            ("{}", "tstzset"),
        ],
    )
    def test_rejected_with_conversion_error(self, con, literal, type_name):
        with pytest.raises((ConversionError, QuackError)):
            con.execute(f"SELECT '{literal}'::{type_name}")

    def test_error_keeps_connection_usable(self, con):
        with pytest.raises(QuackError):
            con.execute("SELECT 'bogus'::STBOX")
        assert con.execute("SELECT 1").scalar() == 1


class TestBadWkb:
    def test_truncated_wkb_to_geometry(self, con):
        con.execute("CREATE OR REPLACE TABLE wkb_t(b BLOB)")
        from repro import geo

        good = geo.encode_wkb(geo.Point(1, 2))
        con.database.catalog.get_table("wkb_t").append_rows(
            [(good[:-3],)]
        )
        with pytest.raises((ConversionError, ExecutionError, Exception)):
            con.execute("SELECT b::GEOMETRY FROM wkb_t")


class TestBadDdl:
    def test_index_on_missing_column(self, con):
        con.execute("CREATE OR REPLACE TABLE g(box STBOX)")
        with pytest.raises(CatalogError):
            con.execute("CREATE INDEX bad ON g USING TRTREE(nope)")

    def test_index_unknown_type(self, con):
        con.execute("CREATE OR REPLACE TABLE g2(box STBOX)")
        with pytest.raises(CatalogError):
            con.execute("CREATE INDEX bad2 ON g2 USING FROBTREE(box)")

    def test_duplicate_index_name(self, con):
        con.execute("CREATE OR REPLACE TABLE g3(box STBOX)")
        con.execute("CREATE INDEX once ON g3 USING TRTREE(box)")
        with pytest.raises(CatalogError):
            con.execute("CREATE INDEX once ON g3 USING TRTREE(box)")

    def test_unknown_column_type(self, con):
        with pytest.raises(BinderError):
            con.execute("CREATE TABLE broken(a NOTATYPE)")


class TestTypeMismatches:
    def test_mixed_span_types_in_operator(self, con):
        with pytest.raises(QuackError):
            con.execute("SELECT intspan '[1,2]' && tstzspan "
                        "'[2025-01-01, 2025-01-02]'")

    def test_duration_on_non_temporal(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT duration(42)")

    def test_srid_mismatch_surfaces(self, con):
        with pytest.raises(QuackError):
            con.execute(
                "SELECT stbox 'SRID=4326;STBOX X((0,0),(1,1))' && "
                "stbox 'SRID=3857;STBOX X((0,0),(1,1))'"
            )


class TestParserRecovery:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELEC 1",
            "SELECT FROM t",
            "SELECT 1 FROM",
            "SELECT (1",
            "INSERT INTO",
            "CREATE TABLE t(",
        ],
    )
    def test_syntax_errors(self, con, sql):
        with pytest.raises(ParserError):
            con.execute(sql)

    def test_connection_survives_parse_error(self, con):
        with pytest.raises(ParserError):
            con.execute("SELECT ((")
        assert con.execute("SELECT 2").scalar() == 2
