"""TRTREE index tests mirroring paper §4.2 (both construction paths)."""

import numpy as np
import pytest

from repro import core
from repro.core.rtree_index import RTreeIndex, stbox_to_rect
from repro.meos import STBox, stbox


INSERT = (
    "INSERT INTO test_geo "
    "SELECT ('2025-08-11 12:00:00'::timestamp + "
    "INTERVAL (i || ' minutes')), "
    "('STBOX X((' || (i * 1.0) || ',' || (i * 1.0) || '),(' || "
    "(i * 1.0 + 0.5) || ',' || (i * 1.0 + 0.5) || '))') "
    "FROM generate_series(1, {n}) AS t(i)"
)

QUERY = ("SELECT count(*) FROM test_geo WHERE box && "
         "STBOX('STBOX X((100.0,100.0),(110.0,110.0))')")


def _make(con):
    con.execute('CREATE TABLE test_geo("times" timestamptz, "box" stbox)')


class TestIncrementalConstruction:
    """§4.2.1: index first, data appended afterwards."""

    def test_paper_4_4_walkthrough(self):
        con = core.connect()
        _make(con)
        con.execute("CREATE INDEX rtree_stbox ON test_geo "
                    "USING TRTREE(box)")
        con.execute(INSERT.format(n=1000))
        index = con.database.catalog.indexes["rtree_stbox"]
        assert len(index) == 1000
        plan = con.explain(QUERY)
        assert "TRTREE_INDEX_SCAN" in plan
        assert con.execute(QUERY).scalar() == 11

    def test_appends_after_creation_visible(self):
        con = core.connect()
        _make(con)
        con.execute("CREATE INDEX rt ON test_geo USING TRTREE(box)")
        con.execute(INSERT.format(n=100))
        con.execute(
            "INSERT INTO test_geo VALUES ('2025-08-11'::TIMESTAMPTZ, "
            "'STBOX X((105,105),(106,106))')"
        )
        # Boxes 1..100 only reach 100.5; the query box [100,110]
        # overlaps box 100 plus the manually inserted one.
        assert con.execute(QUERY).scalar() == 2


class TestBulkConstruction:
    """§4.2.2: data first, CREATE INDEX runs Sink/Combine/BulkConstruct."""

    def test_create_index_on_populated_table(self):
        con = core.connect()
        _make(con)
        con.execute(INSERT.format(n=1000))
        con.execute("CREATE INDEX rt ON test_geo USING TRTREE(box)")
        index = con.database.catalog.indexes["rt"]
        assert len(index) == 1000
        assert "TRTREE_INDEX_SCAN" in con.explain(QUERY)
        assert con.execute(QUERY).scalar() == 11

    def test_three_phase_pipeline_manual(self):
        con = core.connect()
        _make(con)
        con.execute(INSERT.format(n=50))
        table = con.database.catalog.get_table("test_geo")
        index = RTreeIndex("manual", table, "box")
        # Re-run the pipeline explicitly (phases of §4.2.2).
        for chunk, row_ids in table.scan():
            index.sink(chunk, row_ids)
        entries = index.combine()
        assert len(entries) == 50
        index.bulk_construct(entries)
        assert len(index) == 50

    def test_bulk_equals_incremental_results(self):
        bulk = core.connect()
        _make(bulk)
        bulk.execute(INSERT.format(n=500))
        bulk.execute("CREATE INDEX rt ON test_geo USING TRTREE(box)")

        inc = core.connect()
        _make(inc)
        inc.execute("CREATE INDEX rt ON test_geo USING TRTREE(box)")
        inc.execute(INSERT.format(n=500))

        for lo in (10, 100, 400):
            query = (f"SELECT count(*) FROM test_geo WHERE box && "
                     f"STBOX('STBOX X(({lo}.0,{lo}.0),"
                     f"({lo + 20}.0,{lo + 20}.0))')")
            assert bulk.execute(query).scalar() == \
                inc.execute(query).scalar()


class TestScanMatching:
    """§4.3: operator/type matching for scan injection."""

    def test_matches_overlap_on_indexed_column(self):
        con = core.connect()
        _make(con)
        con.execute("CREATE INDEX rt ON test_geo USING TRTREE(box)")
        index = con.database.catalog.indexes["rt"]
        box = stbox("STBOX X((0,0),(1,1))")
        assert index.matches("&&", "box", box)
        assert not index.matches("&&", "times", box)
        assert not index.matches("=", "box", box)
        assert index.matches("&&", "box", None)  # join probe

    def test_probe_rechecks_not_needed_for_boxes(self):
        con = core.connect()
        _make(con)
        con.execute("CREATE INDEX rt ON test_geo USING TRTREE(box)")
        con.execute(INSERT.format(n=200))
        index = con.database.catalog.indexes["rt"]
        hits = index.probe("&&", stbox("STBOX X((50,50),(60,60))"))
        assert len(hits) == 11  # boxes 50..60 overlap [50, 60]

    def test_update_triggers_rebuild(self):
        con = core.connect()
        _make(con)
        con.execute("CREATE INDEX rt ON test_geo USING TRTREE(box)")
        con.execute(INSERT.format(n=50))
        con.execute(
            "UPDATE test_geo SET box = 'STBOX X((900,900),(901,901))'"
            "::STBOX WHERE times = '2025-08-11 12:01:00'::TIMESTAMPTZ"
        )
        moved = con.execute(
            "SELECT count(*) FROM test_geo WHERE box && "
            "STBOX('STBOX X((899.0,899.0),(902.0,902.0))')"
        ).scalar()
        assert moved == 1


class TestSridNormalization:
    def test_rect_conversion(self):
        box = STBox(0, 0, 2, 2)
        rect = stbox_to_rect(box)
        assert rect[0] == 0 and rect[4] == 2
        assert rect[2] < -1e18 and rect[5] > 1e18  # unbounded time

    def test_query_in_other_srid_transformed(self):
        con = core.connect()
        con.execute("CREATE TABLE g(box stbox)")
        con.execute("CREATE INDEX rt ON g USING TRTREE(box)")
        # Index in UTM 48N metres around Hanoi.
        con.execute(
            "INSERT INTO g VALUES "
            "('SRID=32648;STBOX X((585000,2325000),(586000,2326000))')"
        )
        index = con.database.catalog.indexes["rt"]
        # Probe with a WGS84 box covering Hanoi: must be normalized.
        query = STBox(105.7, 20.9, 106.0, 21.2, srid=4326)
        hits = index.probe("&&", query)
        assert hits == [0]
