"""Mini DuckDB-Spatial extension tests (GEOMETRY, ST_*, RTREE, BOX_2D)."""

import pytest

from repro import core, geo


@pytest.fixture(scope="module")
def con():
    return core.connect()


class TestGeometryType:
    def test_wkt_casts(self, con):
        got = con.execute(
            "SELECT ST_AsText('POINT(1 2)'::GEOMETRY)"
        ).scalar()
        assert got == "POINT(1 2)"

    def test_wkb_round_trip(self, con):
        got = con.execute(
            "SELECT ST_AsText((('LINESTRING(0 0, 1 1)'::GEOMETRY)"
            "::WKB_BLOB)::GEOMETRY)"
        ).scalar()
        assert got == "LINESTRING(0 0, 1 1)"

    def test_geometry_column_storage(self, con):
        con.execute("CREATE OR REPLACE TABLE g(geom GEOMETRY)")
        con.execute("INSERT INTO g VALUES ('POINT(3 4)'::GEOMETRY)")
        value = con.execute("SELECT geom FROM g").scalar()
        assert isinstance(value, geo.Point)


class TestStFunctions:
    def test_distance(self, con):
        assert con.execute(
            "SELECT ST_Distance('POINT(0 0)'::GEOMETRY, "
            "'POINT(3 4)'::GEOMETRY)"
        ).scalar() == 5.0

    def test_intersects(self, con):
        assert con.execute(
            "SELECT ST_Intersects('POLYGON((0 0, 2 0, 2 2, 0 2, 0 0))'"
            "::GEOMETRY, 'POINT(1 1)'::GEOMETRY)"
        ).scalar() is True

    def test_dwithin(self, con):
        assert con.execute(
            "SELECT ST_DWithin('POINT(0 0)'::GEOMETRY, "
            "'POINT(0 3)'::GEOMETRY, 3.5)"
        ).scalar() is True

    def test_length_area_centroid(self, con):
        assert con.execute(
            "SELECT ST_Length('LINESTRING(0 0, 3 4)'::GEOMETRY)"
        ).scalar() == 5.0
        assert con.execute(
            "SELECT ST_Area('POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))'"
            "::GEOMETRY)"
        ).scalar() == 16.0
        got = con.execute(
            "SELECT ST_AsText(ST_Centroid('POLYGON((0 0, 2 0, 2 2, 0 2,"
            " 0 0))'::GEOMETRY))"
        ).scalar()
        assert got == "POINT(1 1)"

    def test_st_point_and_xy(self, con):
        assert con.execute("SELECT ST_X(ST_Point(3.5, 4.5))").scalar() == 3.5
        assert con.execute("SELECT ST_Y(ST_Point(3.5, 4.5))").scalar() == 4.5

    def test_collect_list(self, con):
        con.execute("CREATE OR REPLACE TABLE pts(g GEOMETRY)")
        con.execute(
            "INSERT INTO pts VALUES ('POINT(0 0)'::GEOMETRY), "
            "('POINT(1 1)'::GEOMETRY)"
        )
        got = con.execute(
            "SELECT ST_AsText(ST_Collect(list(g))) FROM pts"
        ).scalar()
        assert got.startswith("MULTIPOINT")

    def test_extent_aggregate(self, con):
        con.execute("CREATE OR REPLACE TABLE pts2(g GEOMETRY)")
        con.execute(
            "INSERT INTO pts2 VALUES ('POINT(0 0)'::GEOMETRY), "
            "('POINT(5 9)'::GEOMETRY)"
        )
        box = con.execute("SELECT ST_Extent(g) FROM pts2").scalar()
        assert box.max_y == 9.0


class TestBox2D:
    def test_struct_literal_cast(self, con):
        box = con.execute(
            "SELECT {min_x: 1, min_y: 2, max_x: 3, max_y: 4}::BOX_2D"
        ).scalar()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (1, 2, 3, 4)

    def test_intersects_with_box(self, con):
        assert con.execute(
            "SELECT ST_Intersects('POINT(2 3)'::GEOMETRY, "
            "{min_x: 0, min_y: 0, max_x: 5, max_y: 5}::BOX_2D)"
        ).scalar() is True

    def test_missing_field_rejected(self, con):
        from repro.quack import QuackError

        with pytest.raises(QuackError):
            con.execute("SELECT {min_x: 1}::BOX_2D")


class TestFig2GeomTableFlow:
    """The paper's §4.4 test_geo_geom construction: UPDATE + RTREE."""

    def test_update_geometry_then_index(self):
        con = core.connect()
        con.execute(
            "CREATE TABLE test_geo_geom(times TIMESTAMPTZ, box STBOX, "
            "geom GEOMETRY)"
        )
        con.execute(
            "INSERT INTO test_geo_geom(times, box) "
            "SELECT ('2025-08-11 12:00:00'::timestamp + "
            "INTERVAL (i || ' minutes')), "
            "('STBOX X((' || i || ',' || i || '),(' || (i + 0.5) || ',' "
            "|| (i + 0.5) || '))') FROM generate_series(1, 500) AS t(i)"
        )
        # The paper's exact UPDATE:
        con.execute(
            "UPDATE test_geo_geom SET geom = geometry(box)::GEOMETRY"
        )
        con.execute(
            "CREATE INDEX rtree_geom ON test_geo_geom USING RTREE(geom)"
        )
        query = (
            "SELECT count(*) FROM test_geo_geom WHERE ST_Intersects(geom, "
            "{min_x: 100, min_y: 100, max_x: 110, max_y: 110}::BOX_2D)"
        )
        assert "RTREE_INDEX_SCAN" in con.explain(query)
        assert con.execute(query).scalar() == 11
