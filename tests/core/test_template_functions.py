"""SQL surface of the template types (sets, spans, spansets) end to end."""

import pytest

from repro import core


@pytest.fixture(scope="module")
def con():
    return core.connect()


class TestSetFunctions:
    def test_accessors(self, con):
        assert con.execute(
            "SELECT numValues(intset '{3, 1, 2}')"
        ).scalar() == 3
        assert con.execute(
            "SELECT startValue(intset '{3, 1, 2}')"
        ).scalar() == 1
        assert con.execute(
            "SELECT endValue(intset '{3, 1, 2}')"
        ).scalar() == 3
        assert con.execute(
            "SELECT valueN(intset '{3, 1, 2}', 2)"
        ).scalar() == 2

    def test_mem_size(self, con):
        assert con.execute(
            "SELECT memSize(intset '{1, 2, 3}')"
        ).scalar() > 0

    def test_predicates(self, con):
        assert con.execute(
            "SELECT intset '{1, 2, 3}' @> 2"
        ).scalar() is True
        assert con.execute(
            "SELECT intset '{1, 2}' && intset '{2, 3}'"
        ).scalar() is True
        assert con.execute(
            "SELECT intset '{1, 2}' @> intset '{2}'"
        ).scalar() is True

    def test_set_constructor_from_value(self, con):
        assert con.execute(
            "SELECT (set(5)::intset)::VARCHAR"
        ).scalar() == "{5}"

    def test_union_operator(self, con):
        assert con.execute(
            "SELECT (textset '{\"a\"}' + textset '{\"b\"}')::VARCHAR"
        ).scalar() == '{"a", "b"}'

    def test_shift(self, con):
        assert con.execute(
            "SELECT shift(intset '{1, 2}', 10)::VARCHAR"
        ).scalar() == "{11, 12}"

    def test_srid_of_geomset(self, con):
        assert con.execute(
            "SELECT SRID(geomset 'SRID=4326;{Point(0 0)}')"
        ).scalar() == 4326


class TestSpanFunctions:
    def test_bounds(self, con):
        assert con.execute(
            "SELECT lower(floatspan '[1.5, 9]')"
        ).scalar() == 1.5
        assert con.execute(
            "SELECT upper(floatspan '[1.5, 9]')"
        ).scalar() == 9.0
        assert con.execute(
            "SELECT lowerInc(floatspan '(1, 2]')"
        ).scalar() is False
        assert con.execute(
            "SELECT upperInc(floatspan '(1, 2]')"
        ).scalar() is True

    def test_width_and_duration(self, con):
        assert con.execute(
            "SELECT width(intspan '[1, 3]')"
        ).scalar() == 3  # canonical [1, 4)
        assert str(con.execute(
            "SELECT duration(tstzspan '[2025-01-01, 2025-01-04]')"
        ).scalar()) == "3 days"

    def test_positional_operators(self, con):
        assert con.execute(
            "SELECT intspan '[1, 2]' << intspan '[5, 6]'"
        ).scalar() is True
        assert con.execute(
            "SELECT intspan '[5, 6]' >> intspan '[1, 2]'"
        ).scalar() is True
        assert con.execute(
            "SELECT floatspan '[1, 2)' -|- floatspan '[2, 3]'"
        ).scalar() is True

    def test_expand(self, con):
        assert con.execute(
            "SELECT expand(floatspan '[2, 4]', 1.0)::VARCHAR"
        ).scalar() == "[1, 5]"
        got = con.execute(
            "SELECT expand(tstzspan '[2025-01-02, 2025-01-03]', "
            "interval '1 day')::VARCHAR"
        ).scalar()
        assert got.startswith("[2025-01-01")

    def test_shift_scale_tstz(self, con):
        got = con.execute(
            "SELECT shiftScale(tstzspan '[2025-01-01, 2025-01-02]', "
            "interval '1 day', interval '2 days')::VARCHAR"
        ).scalar()
        assert got == ("[2025-01-02 00:00:00+00, "
                       "2025-01-04 00:00:00+00]")


class TestSpansetFunctions:
    SS = "tstzspanset '{[2025-01-01, 2025-01-02], [2025-01-04, 2025-01-05]}'"

    def test_structure(self, con):
        assert con.execute(
            f"SELECT numSpans({self.SS})"
        ).scalar() == 2
        assert con.execute(
            f"SELECT startSpan({self.SS})::VARCHAR"
        ).scalar().startswith("[2025-01-01")
        assert con.execute(
            f"SELECT endSpan({self.SS})::VARCHAR"
        ).scalar().startswith("[2025-01-04")

    def test_durations(self, con):
        assert str(con.execute(
            f"SELECT duration({self.SS})"
        ).scalar()) == "2 days"
        assert str(con.execute(
            f"SELECT duration({self.SS}, true)"
        ).scalar()) == "4 days"

    def test_cast_to_span(self, con):
        got = con.execute(f"SELECT ({self.SS})::tstzspan::VARCHAR").scalar()
        assert got == ("[2025-01-01 00:00:00+00, "
                       "2025-01-05 00:00:00+00]")

    def test_membership(self, con):
        assert con.execute(
            f"SELECT {self.SS} @> '2025-01-01 12:00:00'::TIMESTAMPTZ"
        ).scalar() is True
        assert con.execute(
            f"SELECT {self.SS} @> '2025-01-03'::TIMESTAMPTZ"
        ).scalar() is False

    def test_minus_operator(self, con):
        got = con.execute(
            f"SELECT ({self.SS} - tstzspanset "
            "'{[2025-01-04, 2025-01-06]}')::VARCHAR"
        ).scalar()
        assert "2025-01-04" not in got

    def test_intspanset_numbers(self, con):
        assert con.execute(
            "SELECT numSpans(intspanset '{[1, 2], [3, 4]}')"
        ).scalar() == 1  # canonical merge of adjacent int spans


class TestQueriesOverTemplateColumns:
    """Template types as table columns with grouping/joins."""

    @pytest.fixture(scope="class")
    def data(self):
        con = core.connect()
        con.execute(
            "CREATE TABLE shifts(worker VARCHAR, period TSTZSPAN)"
        )
        con.execute(
            "INSERT INTO shifts VALUES "
            "('ana', '[2025-01-01 08:00:00, 2025-01-01 16:00:00]'),"
            "('ana', '[2025-01-02 08:00:00, 2025-01-02 12:00:00]'),"
            "('bo', '[2025-01-01 10:00:00, 2025-01-01 18:00:00]')"
        )
        return con

    def test_overlap_join(self, data):
        got = data.execute(
            "SELECT count(*) FROM shifts a, shifts b "
            "WHERE a.worker < b.worker AND a.period && b.period"
        ).scalar()
        assert got == 1

    def test_group_by_worker_duration(self, data):
        rows = data.execute(
            "SELECT worker, sum(epoch(upper(period)) - "
            "epoch(lower(period))) / 3600 AS hours "
            "FROM shifts GROUP BY worker ORDER BY worker"
        ).fetchall()
        assert rows == [("ana", 12.0), ("bo", 8.0)]

    def test_order_by_span_column_via_lower(self, data):
        rows = data.execute(
            "SELECT worker FROM shifts ORDER BY lower(period), worker"
        ).fetchall()
        assert rows[0][0] == "ana"
