"""Spatial predicate/measure tests, with property-based checks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    GeometryError,
    LineString,
    Point,
    Polygon,
    centroid,
    clip_segment_to_geometry,
    clip_segment_to_polygon,
    collect,
    contains,
    distance,
    dwithin,
    intersects,
    length,
    parse_wkt,
    point_in_polygon,
)

SQUARE = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
DONUT = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
)


class TestPointInPolygon:
    def test_inside(self):
        assert point_in_polygon((5, 5), SQUARE)

    def test_outside(self):
        assert not point_in_polygon((15, 5), SQUARE)

    def test_on_boundary(self):
        assert point_in_polygon((10, 5), SQUARE)
        assert point_in_polygon((0, 0), SQUARE)

    def test_in_hole(self):
        assert not point_in_polygon((5, 5), DONUT)

    def test_on_hole_boundary(self):
        assert point_in_polygon((4, 5), DONUT)

    def test_between_hole_and_shell(self):
        assert point_in_polygon((2, 2), DONUT)


class TestIntersects:
    def test_point_in_polygon(self):
        assert intersects(SQUARE, Point(5, 5))
        assert not intersects(SQUARE, Point(50, 50))

    def test_crossing_lines(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        assert intersects(a, b)

    def test_parallel_lines(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(0, 1), (10, 1)])
        assert not intersects(a, b)

    def test_collinear_overlap(self):
        a = LineString([(0, 0), (5, 0)])
        b = LineString([(3, 0), (8, 0)])
        assert intersects(a, b)

    def test_line_through_polygon(self):
        line = LineString([(-5, 5), (15, 5)])
        assert intersects(line, SQUARE)

    def test_line_inside_polygon_no_boundary_cross(self):
        line = LineString([(2, 2), (3, 3)])
        assert intersects(line, SQUARE)

    def test_polygon_containing_polygon(self):
        inner = Polygon([(2, 2), (3, 2), (3, 3), (2, 3)])
        assert intersects(SQUARE, inner)
        assert intersects(inner, SQUARE)

    def test_collection(self):
        geom = collect([Point(50, 50), Point(5, 5)])
        assert intersects(geom, SQUARE)

    def test_symmetric(self):
        line = LineString([(-5, 5), (15, 5)])
        assert intersects(line, SQUARE) == intersects(SQUARE, line)


class TestDistance:
    def test_point_point(self):
        assert distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_point_segment(self):
        assert distance(Point(5, 5), LineString([(0, 0), (10, 0)])) == 5.0

    def test_touching_is_zero(self):
        assert distance(SQUARE, Point(10, 5)) == 0.0

    def test_inside_is_zero(self):
        assert distance(SQUARE, Point(5, 5)) == 0.0

    def test_polygon_point(self):
        assert distance(SQUARE, Point(13, 14)) == 5.0

    def test_line_line(self):
        a = LineString([(0, 0), (10, 0)])
        b = LineString([(0, 3), (10, 3)])
        assert distance(a, b) == 3.0

    def test_collections_use_min(self):
        geom = collect([Point(100, 100), Point(0, 7)])
        assert distance(geom, Point(0, 0)) == 7.0

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            distance(LineString([]), Point(0, 0))

    def test_large_linestrings_vectorized_path(self):
        a = LineString([(i, 0) for i in range(50)])
        b = LineString([(i, 7) for i in range(50)])
        assert distance(a, b) == pytest.approx(7.0)

    @given(
        st.floats(-100, 100), st.floats(-100, 100),
        st.floats(-100, 100), st.floats(-100, 100),
    )
    @settings(max_examples=80)
    def test_symmetry(self, x0, y0, x1, y1):
        a = LineString([(x0, y0), (x0 + 5, y0 + 1)])
        b = LineString([(x1, y1), (x1 - 2, y1 + 3)])
        assert distance(a, b) == pytest.approx(distance(b, a), abs=1e-9)

    @given(st.floats(-50, 50), st.floats(-50, 50))
    @settings(max_examples=80)
    def test_dwithin_consistent_with_distance(self, x, y):
        p = Point(x, y)
        d = distance(p, SQUARE)
        assert dwithin(p, SQUARE, d + 0.01)
        if d > 0.02:
            assert not dwithin(p, SQUARE, d - 0.02)


class TestContains:
    def test_polygon_contains_point(self):
        assert contains(SQUARE, Point(5, 5))
        assert not contains(SQUARE, Point(50, 5))

    def test_polygon_contains_line(self):
        assert contains(SQUARE, LineString([(1, 1), (9, 9)]))
        assert not contains(SQUARE, LineString([(1, 1), (19, 9)]))

    def test_point_never_contains(self):
        assert not contains(Point(0, 0), Point(0, 0))


class TestMeasures:
    def test_length_multilinestring(self):
        geom = collect(
            [LineString([(0, 0), (3, 4)]), LineString([(0, 0), (6, 8)])]
        )
        assert length(geom) == pytest.approx(15.0)

    def test_length_ignores_points(self):
        assert length(Point(1, 1)) == 0.0

    def test_centroid_polygon(self):
        c = centroid(SQUARE)
        assert (c.x, c.y) == (5.0, 5.0)

    def test_centroid_points(self):
        c = centroid(collect([Point(0, 0), Point(2, 0)]))
        assert (c.x, c.y) == (1.0, 0.0)


class TestClipping:
    def test_segment_through_square(self):
        spans = clip_segment_to_polygon((-5, 5), (15, 5), SQUARE)
        assert spans == [(0.25, 0.75)]

    def test_segment_fully_inside(self):
        spans = clip_segment_to_polygon((2, 5), (8, 5), SQUARE)
        assert spans == [(0.0, 1.0)]

    def test_segment_fully_outside(self):
        spans = clip_segment_to_polygon((20, 20), (30, 30), SQUARE)
        assert spans == []

    def test_segment_through_donut_hole(self):
        spans = clip_segment_to_polygon((-10, 5), (20, 5), DONUT)
        # enters shell, exits into the hole, re-enters, exits the shell
        assert len(spans) == 2
        total = sum(hi - lo for lo, hi in spans)
        assert total == pytest.approx((10.0 - 2.0) / 30.0, abs=1e-6)

    def test_clip_to_geometry_merges(self):
        left = Polygon([(0, 0), (5, 0), (5, 10), (0, 10)])
        right = Polygon([(5, 0), (10, 0), (10, 10), (5, 10)])
        spans = clip_segment_to_geometry(
            (-5, 5), (15, 5), collect([left, right])
        )
        assert spans == [(0.25, 0.75)]

    def test_clip_touch_point(self):
        spans = clip_segment_to_geometry((0, 0), (10, 0), Point(5, 0))
        assert spans == [(0.5, 0.5)]

    @given(st.floats(-20, 20), st.floats(-20, 20),
           st.floats(-20, 20), st.floats(-20, 20))
    @settings(max_examples=100)
    def test_clip_intervals_sorted_and_bounded(self, x0, y0, x1, y1):
        spans = clip_segment_to_polygon((x0, y0), (x1, y1), SQUARE)
        for lo, hi in spans:
            assert 0.0 <= lo <= hi <= 1.0
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi <= b_lo
