"""CRS / reprojection tests (paper §3.5 transform example included)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    GeometryError,
    LineString,
    Point,
    Polygon,
    known_srids,
    parse_wkt,
    transform,
    transform_coord,
)


class TestRegistry:
    def test_known_srids(self):
        ids = known_srids()
        for srid in (4326, 3857, 3812, 32648, 3405):
            assert srid in ids

    def test_unknown_srid_rejected(self):
        with pytest.raises(GeometryError):
            transform_coord(0, 0, 4326, 999999)

    def test_untagged_geometry_rejected(self):
        with pytest.raises(GeometryError):
            transform(Point(1, 2), 3857)


class TestPaperExample:
    """§3.5: transform(geomset 'SRID=4326;...', 3812)."""

    def test_amiens_point(self):
        p = transform(parse_wkt("SRID=4326;POINT(2.340088 49.400250)"), 3812)
        # Paper expects POINT(502773.429981 511805.120402); our Lambert
        # implementation agrees to centimetres.
        assert p.x == pytest.approx(502773.43, abs=0.5)
        assert p.y == pytest.approx(511805.12, abs=0.5)

    def test_second_point(self):
        p = transform(parse_wkt("SRID=4326;POINT(6.575317 51.553167)"), 3812)
        assert p.x == pytest.approx(803028.91, abs=0.5)
        assert p.y == pytest.approx(751590.74, abs=0.5)


class TestWebMercator:
    def test_origin(self):
        x, y = transform_coord(0, 0, 4326, 3857)
        assert x == pytest.approx(0.0, abs=1e-6)
        assert y == pytest.approx(0.0, abs=1e-6)

    def test_known_value(self):
        x, y = transform_coord(180, 0, 4326, 3857)
        assert x == pytest.approx(20037508.34, rel=1e-6)


class TestUtm48:
    def test_hanoi_city_center(self):
        # Hanoi (105.85 E, 21.03 N) is near the UTM 48N central meridian.
        x, y = transform_coord(105.85, 21.03, 4326, 32648)
        assert x == pytest.approx(588445, abs=2000)
        assert y == pytest.approx(2326000, abs=5000)

    def test_central_meridian_maps_to_false_easting(self):
        x, _ = transform_coord(105.0, 20.0, 4326, 32648)
        assert x == pytest.approx(500000.0, abs=0.01)


class TestRoundTrips:
    @given(
        st.floats(100, 110), st.floats(8, 24),
        st.sampled_from([3857, 32648, 3405]),
    )
    @settings(max_examples=100)
    def test_projection_round_trip(self, lon, lat, srid):
        x, y = transform_coord(lon, lat, 4326, srid)
        lon2, lat2 = transform_coord(x, y, srid, 4326)
        assert lon2 == pytest.approx(lon, abs=1e-6)
        assert lat2 == pytest.approx(lat, abs=1e-6)

    @given(st.floats(2, 7), st.floats(49, 52))
    @settings(max_examples=100)
    def test_lambert_round_trip(self, lon, lat):
        x, y = transform_coord(lon, lat, 4326, 3812)
        lon2, lat2 = transform_coord(x, y, 3812, 4326)
        assert lon2 == pytest.approx(lon, abs=1e-6)
        assert lat2 == pytest.approx(lat, abs=1e-6)

    def test_same_srid_is_identity(self):
        p = Point(1, 2, 4326)
        assert transform(p, 4326) is p


class TestGeometryKinds:
    def test_linestring(self):
        line = LineString([(105.8, 21.0), (105.9, 21.1)], srid=4326)
        out = transform(line, 32648)
        assert out.srid == 32648
        assert len(out.points) == 2

    def test_polygon_with_hole(self):
        poly = Polygon(
            [(105.8, 21.0), (105.9, 21.0), (105.9, 21.1), (105.8, 21.1)],
            holes=[[(105.84, 21.04), (105.86, 21.04), (105.86, 21.06),
                    (105.84, 21.06)]],
            srid=4326,
        )
        out = transform(poly, 32648)
        assert len(out.holes) == 1
        assert out.area() > 1e6  # ~ 10km x 11km in metres

    def test_collection(self):
        geom = parse_wkt(
            "SRID=4326;GEOMETRYCOLLECTION(POINT(105.8 21.0), "
            "LINESTRING(105.8 21.0, 105.9 21.1))"
        )
        out = transform(geom, 32648)
        assert out.srid == 32648
        assert len(out.geoms) == 2
