"""Unit tests for geometry value types."""

import math

import pytest

from repro.geo import (
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    collect,
    flatten,
)


class TestPoint:
    def test_coordinates(self):
        p = Point(1.5, -2.5)
        assert list(p.coordinates()) == [(1.5, -2.5)]

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_equality_includes_srid(self):
        assert Point(1, 2, 4326) == Point(1, 2, 4326)
        assert Point(1, 2, 4326) != Point(1, 2, 3857)
        assert Point(1, 2) != Point(1, 3)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(3, 4)}) == 2

    def test_bounds(self):
        assert Point(1, 2).bounds() == (1, 2, 1, 2)

    def test_with_srid(self):
        p = Point(1, 2).with_srid(4326)
        assert p.srid == 4326
        assert p.x == 1

    def test_never_empty(self):
        assert not Point(0, 0).is_empty()


class TestLineString:
    def test_length(self):
        line = LineString([(0, 0), (3, 4), (3, 10)])
        assert line.length() == pytest.approx(11.0)

    def test_segments(self):
        line = LineString([(0, 0), (1, 0), (1, 1)])
        assert list(line.segments()) == [
            ((0.0, 0.0), (1.0, 0.0)),
            ((1.0, 0.0), (1.0, 1.0)),
        ]

    def test_empty(self):
        assert LineString([]).is_empty()
        assert not LineString([(0, 0), (1, 1)]).is_empty()

    def test_bounds(self):
        line = LineString([(0, 5), (-3, 2), (7, 1)])
        assert line.bounds() == (-3, 1, 7, 5)

    def test_bounds_cached(self):
        line = LineString([(0, 0), (2, 2)])
        assert line.bounds() is line.bounds()


class TestPolygon:
    def test_ring_auto_closed(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert poly.shell[0] == poly.shell[-1]
        assert len(poly.shell) == 5

    def test_area(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert poly.area() == pytest.approx(16.0)

    def test_area_with_hole(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        )
        assert poly.area() == pytest.approx(96.0)

    def test_centroid_of_square(self):
        poly = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        c = poly.centroid()
        assert (c.x, c.y) == (1.0, 1.0)

    def test_degenerate_ring_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_rings_iteration(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        )
        assert len(list(poly.rings())) == 2


class TestCollections:
    def test_multipoint_type_check(self):
        with pytest.raises(GeometryError):
            MultiPoint([LineString([(0, 0), (1, 1)])])

    def test_collect_homogeneous_points(self):
        geom = collect([Point(0, 0), Point(1, 1)])
        assert isinstance(geom, MultiPoint)
        assert len(geom) == 2

    def test_collect_single_passthrough(self):
        p = Point(3, 3)
        assert collect([p]) is p

    def test_collect_mixed(self):
        geom = collect([Point(0, 0), LineString([(0, 0), (1, 1)])])
        assert isinstance(geom, GeometryCollection)

    def test_collect_lines(self):
        geom = collect(
            [LineString([(0, 0), (1, 1)]), LineString([(2, 2), (3, 3)])]
        )
        assert isinstance(geom, MultiLineString)

    def test_collect_polygons(self):
        square = [(0, 0), (1, 0), (1, 1), (0, 1)]
        geom = collect([Polygon(square), Polygon(square)])
        assert isinstance(geom, MultiPolygon)

    def test_collect_empty(self):
        geom = collect([])
        assert geom.is_empty()

    def test_collect_srid_mismatch(self):
        with pytest.raises(GeometryError):
            collect([Point(0, 0, 4326), Point(1, 1, 3857)])

    def test_flatten_nested(self):
        inner = GeometryCollection([Point(0, 0), Point(1, 1)])
        outer = GeometryCollection([inner, Point(2, 2)])
        assert len(list(flatten(outer))) == 3

    def test_multigeometry_inherits_srid(self):
        geom = MultiPoint([Point(0, 0, 4326)])
        assert geom.srid == 4326
