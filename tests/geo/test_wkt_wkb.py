"""WKT/EWKT/WKB serialization tests, including round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    decode_wkb,
    encode_wkb,
    format_ewkt,
    format_wkt,
    parse_wkt,
)


class TestParseWkt:
    def test_point(self):
        p = parse_wkt("POINT(1.5 -2.5)")
        assert isinstance(p, Point)
        assert (p.x, p.y) == (1.5, -2.5)

    def test_point_with_srid(self):
        p = parse_wkt("SRID=4326;POINT(2.34 49.40)")
        assert p.srid == 4326

    def test_case_insensitive(self):
        assert isinstance(parse_wkt("point(0 0)"), Point)

    def test_linestring(self):
        line = parse_wkt("LINESTRING(0 0, 1 1, 2 0)")
        assert isinstance(line, LineString)
        assert len(line.points) == 3

    def test_polygon_with_hole(self):
        poly = parse_wkt(
            "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0),"
            "(2 2, 4 2, 4 4, 2 4, 2 2))"
        )
        assert isinstance(poly, Polygon)
        assert len(poly.holes) == 1

    def test_multipoint_both_syntaxes(self):
        a = parse_wkt("MULTIPOINT((0 0), (1 1))")
        b = parse_wkt("MULTIPOINT(0 0, 1 1)")
        assert a == b

    def test_multilinestring(self):
        geom = parse_wkt("MULTILINESTRING((0 0, 1 1), (2 2, 3 3))")
        assert isinstance(geom, MultiLineString)
        assert len(geom) == 2

    def test_multipolygon(self):
        geom = parse_wkt(
            "MULTIPOLYGON(((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))"
        )
        assert isinstance(geom, MultiPolygon)

    def test_geometrycollection(self):
        geom = parse_wkt(
            "GEOMETRYCOLLECTION(POINT(0 0), LINESTRING(0 0, 1 1))"
        )
        assert isinstance(geom, GeometryCollection)
        assert len(geom) == 2

    def test_empty(self):
        assert parse_wkt("LINESTRING EMPTY").is_empty()
        assert parse_wkt("MULTIPOINT EMPTY").is_empty()
        assert parse_wkt("GEOMETRYCOLLECTION EMPTY").is_empty()

    def test_scientific_notation(self):
        p = parse_wkt("POINT(1e3 -2.5e-2)")
        assert p.x == 1000.0
        assert p.y == -0.025

    def test_garbage_rejected(self):
        with pytest.raises(GeometryError):
            parse_wkt("TRIANGLE(0 0, 1 1, 2 2)")
        with pytest.raises(GeometryError):
            parse_wkt("POINT(1)")
        with pytest.raises(GeometryError):
            parse_wkt("POINT(1 2) trailing")

    def test_bad_srid(self):
        with pytest.raises(GeometryError):
            parse_wkt("SRID=abc;POINT(0 0)")


class TestFormatWkt:
    def test_point_integers_compact(self):
        assert format_wkt(Point(1.0, 2.0)) == "POINT(1 2)"

    def test_ewkt_srid(self):
        assert format_ewkt(Point(1, 2, 4326)) == "SRID=4326;POINT(1 2)"

    def test_ewkt_no_srid(self):
        assert format_ewkt(Point(1, 2)) == "POINT(1 2)"

    def test_precision(self):
        assert format_wkt(Point(1.23456789, 0), precision=3) == (
            "POINT(1.235 0)"
        )


_coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def _geometries(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Point(draw(_coord), draw(_coord))
    if kind == 1:
        pts = draw(
            st.lists(st.tuples(_coord, _coord), min_size=2, max_size=8)
        )
        return LineString(pts)
    if kind == 2:
        cx, cy = draw(_coord), draw(_coord)
        return Polygon(
            [(cx, cy), (cx + 10, cy), (cx + 10, cy + 10), (cx, cy + 10)]
        )
    pts = draw(st.lists(st.tuples(_coord, _coord), min_size=1, max_size=5))
    return MultiPoint([Point(x, y) for x, y in pts])


class TestRoundTrips:
    @given(_geometries())
    @settings(max_examples=120)
    def test_wkt_round_trip(self, geom):
        assert parse_wkt(format_wkt(geom)) == geom

    @given(_geometries(), st.sampled_from([0, 4326, 3857]))
    @settings(max_examples=120)
    def test_wkb_round_trip(self, geom, srid):
        tagged = geom.with_srid(srid)
        assert decode_wkb(encode_wkb(tagged)) == tagged

    def test_wkb_collection_round_trip(self):
        geom = parse_wkt(
            "SRID=4326;GEOMETRYCOLLECTION(POINT(0 0), "
            "POLYGON((0 0, 1 0, 1 1, 0 0)))"
        )
        restored = decode_wkb(encode_wkb(geom))
        assert restored == geom
        assert restored.srid == 4326

    def test_wkb_truncated_rejected(self):
        data = encode_wkb(Point(1, 2))
        with pytest.raises(GeometryError):
            decode_wkb(data[:-4])
