"""R-tree unit and property tests (incremental + STR bulk load)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import RTree, rect_contains, rect_overlaps, rect_union
from repro.index.rtree import rect_volume


class TestRectPrimitives:
    def test_union(self):
        assert rect_union((0, 0, 1, 1), (2, 2, 3, 3)) == (0, 0, 3, 3)

    def test_overlaps(self):
        assert rect_overlaps((0, 0, 2, 2), (1, 1, 3, 3))
        assert rect_overlaps((0, 0, 2, 2), (2, 2, 3, 3))  # touching counts
        assert not rect_overlaps((0, 0, 1, 1), (2, 2, 3, 3))

    def test_contains(self):
        assert rect_contains((0, 0, 10, 10), (1, 1, 2, 2))
        assert not rect_contains((0, 0, 10, 10), (9, 9, 11, 11))

    def test_volume(self):
        assert rect_volume((0, 0, 2, 3)) == 6.0
        assert rect_volume((0, 0, 0, 5, 5, 5)) == 125.0


def _random_items(n, seed, dims=2):
    rng = random.Random(seed)
    items = []
    for i in range(n):
        mins = [rng.uniform(0, 1000) for _ in range(dims)]
        maxs = [m + rng.uniform(0, 20) for m in mins]
        items.append((tuple(mins + maxs), i))
    return items


class TestIncremental:
    def test_empty_search(self):
        tree = RTree()
        assert tree.search((0, 0, 10, 10)) == []
        assert len(tree) == 0

    def test_single_item(self):
        tree = RTree()
        tree.insert((1, 1, 2, 2), "a")
        assert tree.search((0, 0, 3, 3)) == ["a"]
        assert tree.search((5, 5, 6, 6)) == []

    def test_duplicate_rects_allowed(self):
        tree = RTree()
        for i in range(10):
            tree.insert((1, 1, 2, 2), i)
        assert sorted(tree.search((1, 1, 2, 2))) == list(range(10))

    def test_wrong_dimensions_rejected(self):
        tree = RTree(dimensions=2)
        with pytest.raises(ValueError):
            tree.insert((0, 0, 0, 1, 1, 1), "x")

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    @pytest.mark.parametrize("n", [10, 100, 1500])
    def test_matches_brute_force(self, n):
        items = _random_items(n, seed=n)
        tree = RTree(max_entries=8)
        for rect, rid in items:
            tree.insert(rect, rid)
        tree.check_invariants()
        query = (200, 200, 400, 400)
        expected = sorted(r for rect, r in items
                          if rect_overlaps(rect, query))
        assert sorted(tree.search(query)) == expected

    def test_search_contained(self):
        tree = RTree()
        tree.insert((1, 1, 2, 2), "inside")
        tree.insert((1, 1, 20, 20), "partial")
        got = tree.search_contained((0, 0, 5, 5))
        assert got == ["inside"]

    def test_all_items(self):
        items = _random_items(50, seed=3)
        tree = RTree()
        for rect, rid in items:
            tree.insert(rect, rid)
        assert sorted(r for _, r in tree.all_items()) == list(range(50))


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 16, 17, 1000])
    def test_matches_brute_force(self, n):
        items = _random_items(n, seed=n + 7)
        tree = RTree.bulk_load(items)
        tree.check_invariants()
        query = (100, 100, 500, 500)
        expected = sorted(r for rect, r in items
                          if rect_overlaps(rect, query))
        assert sorted(tree.search(query)) == expected

    def test_bulk_load_shallower_than_incremental(self):
        items = _random_items(2000, seed=11)
        bulk = RTree.bulk_load(items, max_entries=8)
        incremental = RTree(max_entries=8)
        for rect, rid in items:
            incremental.insert(rect, rid)
        assert bulk.height() <= incremental.height()

    def test_bulk_then_insert(self):
        items = _random_items(100, seed=5)
        tree = RTree.bulk_load(items)
        tree.insert((0, 0, 1, 1), "new")
        tree.check_invariants()
        assert "new" in tree.search((0, 0, 2, 2))

    def test_three_dimensional(self):
        items = _random_items(300, seed=9, dims=3)
        tree = RTree.bulk_load(items, dimensions=3)
        query = (0, 0, 0, 500, 500, 500)
        expected = sorted(r for rect, r in items
                          if rect_overlaps(rect, query))
        assert sorted(tree.search(query)) == expected


@st.composite
def _item_lists(draw):
    n = draw(st.integers(1, 120))
    items = []
    for i in range(n):
        x = draw(st.floats(0, 100, allow_nan=False))
        y = draw(st.floats(0, 100, allow_nan=False))
        w = draw(st.floats(0, 10, allow_nan=False))
        h = draw(st.floats(0, 10, allow_nan=False))
        items.append(((x, y, x + w, y + h), i))
    return items


class TestProperties:
    @given(_item_lists(), st.floats(0, 100), st.floats(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_incremental_complete_and_sound(self, items, qx, qy):
        tree = RTree(max_entries=6)
        for rect, rid in items:
            tree.insert(rect, rid)
        tree.check_invariants()
        query = (qx, qy, qx + 25, qy + 25)
        got = sorted(tree.search(query))
        expected = sorted(r for rect, r in items
                          if rect_overlaps(rect, query))
        assert got == expected

    @given(_item_lists())
    @settings(max_examples=60, deadline=None)
    def test_bulk_equals_incremental_results(self, items):
        bulk = RTree.bulk_load(items, max_entries=6)
        incremental = RTree(max_entries=6)
        for rect, rid in items:
            incremental.insert(rect, rid)
        query = (20, 20, 70, 70)
        assert sorted(bulk.search(query)) == \
            sorted(incremental.search(query))
