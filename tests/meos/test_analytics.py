"""timeSplit bucketing and stop detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import meos
from repro.meos import Interval, MeosError, MeosTypeError
from repro.meos.temporal import num_stops, stops, time_split
from repro.meos.timetypes import USECS_PER_DAY, parse_timestamptz as ts

DAY = Interval.parse("1 day")


class TestTimeSplit:
    RAMP = meos.tfloat("[0@2025-01-01, 10@2025-01-03]")

    def test_bucket_count_and_alignment(self):
        buckets = time_split(self.RAMP, DAY)
        assert len(buckets) == 3
        starts = [b for b, _ in buckets]
        assert all(b % USECS_PER_DAY == 0 for b in starts)
        assert starts[0] == ts("2025-01-01")

    def test_fragments_partition_duration(self):
        buckets = time_split(self.RAMP, DAY)
        total = sum(
            frag.duration().total_usecs() for _, frag in buckets
        )
        assert total == self.RAMP.duration().total_usecs()

    def test_fragment_values_continuous(self):
        buckets = time_split(self.RAMP, DAY)
        first = buckets[0][1]
        second = buckets[1][1]
        assert first.end_value() == pytest.approx(
            second.start_value(), abs=1e-9
        )

    def test_origin_shifts_grid(self):
        origin = ts("2025-01-01") + USECS_PER_DAY // 2  # noon grid
        buckets = time_split(self.RAMP, DAY, origin=origin)
        assert buckets[0][0] == ts("2025-01-01") - USECS_PER_DAY // 2

    def test_gap_buckets_skipped(self):
        t = meos.tfloat(
            "{[1@2025-01-01, 1@2025-01-01 06:00:00], "
            "[1@2025-01-05, 1@2025-01-05 06:00:00]}"
        )
        buckets = time_split(t, DAY)
        assert len(buckets) == 2

    def test_invalid_width(self):
        with pytest.raises(MeosError):
            time_split(self.RAMP, Interval())

    @given(st.integers(1, 72))
    @settings(max_examples=60)
    def test_bucket_width_respected(self, hours):
        width = Interval.parse(f"{hours} hours")
        for bucket, frag in time_split(self.RAMP, width):
            assert frag.start_timestamp() >= bucket
            assert frag.end_timestamp() <= bucket + width.total_usecs()


class TestStops:
    #: drives 5 km, parks 2 h (1 m jitter), drives on
    TRIP = meos.tgeompoint(
        "[Point(0 0)@2025-01-01 08:00:00, "
        "Point(5000 0)@2025-01-01 09:00:00, "
        "Point(5001 0)@2025-01-01 11:00:00, "
        "Point(9000 0)@2025-01-01 12:00:00]"
    )

    def test_detects_parking(self):
        found = stops(self.TRIP, 50.0, Interval.parse("30 minutes"))
        assert found is not None
        assert num_stops(self.TRIP, 50.0, Interval.parse("30 minutes")) == 1
        stop = found.sequences()[0]
        assert stop.start_timestamp() == ts("2025-01-01 09:00:00")
        assert stop.end_timestamp() == ts("2025-01-01 11:00:00")

    def test_min_duration_filters(self):
        assert stops(self.TRIP, 50.0, Interval.parse("3 hours")) is None

    def test_max_distance_filters(self):
        # With a 10 km radius the whole trip is one "stop".
        found = stops(self.TRIP, 10_000.0, Interval.parse("1 hour"))
        assert found is not None
        assert found.sequences()[0].num_instants() >= 3

    def test_moving_trip_has_no_stops(self):
        t = meos.tgeompoint(
            "[Point(0 0)@2025-01-01 08:00:00, "
            "Point(9000 0)@2025-01-01 09:00:00]"
        )
        assert stops(t, 50.0, Interval.parse("10 minutes")) is None

    def test_two_stops(self):
        t = meos.tgeompoint(
            "[Point(0 0)@2025-01-01 00:00:00, "
            "Point(1 0)@2025-01-01 01:00:00, "
            "Point(5000 0)@2025-01-01 02:00:00, "
            "Point(5001 0)@2025-01-01 03:00:00, "
            "Point(9000 0)@2025-01-01 04:00:00]"
        )
        assert num_stops(t, 50.0, Interval.parse("30 minutes")) == 2

    def test_requires_point(self):
        with pytest.raises(MeosTypeError):
            stops(meos.tfloat("[1@2025-01-01, 2@2025-01-02]"), 1.0, DAY)

    def test_benchmark_trip_integration(self):
        # Generated trips include traffic stops; the detector must run on
        # them without errors.
        from repro.berlinmod import generate

        dataset = generate(0.001, spacing_m=1500.0)
        for trip in dataset.trips[:20]:
            num_stops(trip.trip, 30.0, Interval.parse("10 seconds"))
