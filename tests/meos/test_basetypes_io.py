"""Base-type descriptors and temporal literal parsing edge cases."""

import pytest

from repro import meos
from repro.meos import MeosError
from repro.meos.basetypes import (
    BIGINT,
    BOOL,
    DATE,
    FLOAT,
    GEOMETRY,
    INT,
    TEXT,
    TSTZ,
    base_type,
)
from repro.meos.temporal.io import _split_at, _split_items


class TestBaseTypeRegistry:
    def test_lookup_by_name(self):
        assert base_type("integer") is INT
        assert base_type("int") is INT
        assert base_type("float8") is FLOAT
        assert base_type("timestamptz") is TSTZ
        assert base_type("TIMESTAMP") is TSTZ

    def test_unknown_rejected(self):
        with pytest.raises(MeosError):
            base_type("quaternion")

    def test_bool_parse(self):
        assert BOOL.parse("t") is True
        assert BOOL.parse("FALSE") is False
        with pytest.raises(MeosError):
            BOOL.parse("maybe")

    def test_float_format_compact(self):
        assert FLOAT.format(2.0) == "2"
        assert FLOAT.format(2.5) == "2.5"

    def test_text_quoting(self):
        assert TEXT.parse('"hello"') == "hello"
        assert TEXT.parse("bare") == "bare"
        assert TEXT.format("x") == '"x"'

    def test_discreteness_flags(self):
        assert INT.is_discrete and BIGINT.is_discrete and DATE.is_discrete
        assert not FLOAT.is_discrete
        assert FLOAT.is_continuous and TSTZ.is_continuous

    def test_geometry_unordered(self):
        assert not GEOMETRY.is_ordered
        assert GEOMETRY.sort_key is not None

    def test_coerce_from_text(self):
        assert INT.coerce("42") == 42
        assert INT.coerce(42) == 42

    def test_pickle_by_name(self):
        import pickle

        assert pickle.loads(pickle.dumps(INT)) is INT
        assert pickle.loads(pickle.dumps(GEOMETRY)) is GEOMETRY


class TestLiteralSplitting:
    def test_split_at_simple(self):
        assert _split_at("1@2025-01-01") == ("1", "2025-01-01")

    def test_split_at_takes_last_at(self):
        value, stamp = _split_at('"a@b"@2025-01-01')
        assert value == '"a@b"'
        assert stamp == "2025-01-01"

    def test_split_at_missing(self):
        with pytest.raises(MeosError):
            _split_at("no timestamp here")

    def test_split_items_respects_parens(self):
        items = _split_items("Point(1 1)@t1, Point(2 2)@t2")
        assert len(items) == 2

    def test_split_items_respects_quotes(self):
        items = _split_items('"a,b"@t1, "c"@t2')
        assert len(items) == 2


class TestParsingEdgeCases:
    def test_whitespace_tolerant(self):
        t = meos.tint("  {  1@2025-01-01 ,   2@2025-01-02  }  ")
        assert t.num_instants() == 2

    def test_negative_values(self):
        t = meos.tfloat("[-1.5@2025-01-01, -0.5@2025-01-02]")
        assert t.min_value() == -1.5

    def test_text_with_comma_inside(self):
        t = meos.ttext('{"a,b"@2025-01-01, "c"@2025-01-02}')
        assert t.values() == ["a,b", "c"]

    def test_geometry_with_nested_parens(self):
        t = meos.tgeometry(
            "[Polygon((0 0, 1 0, 1 1, 0 0))@2025-01-01, "
            "Polygon((0 0, 1 0, 1 1, 0 0))@2025-01-02]"
        )
        assert t.num_instants() == 2

    def test_unbalanced_braces_rejected(self):
        with pytest.raises(MeosError):
            meos.tint("{1@2025-01-01")

    def test_srid_applies_to_all_instants(self):
        t = meos.tgeompoint(
            "SRID=3857;{Point(0 0)@2025-01-01, Point(1 1)@2025-01-02}"
        )
        assert all(i.value.srid == 3857 for i in t.instants())

    def test_fractional_second_timestamps(self):
        t = meos.tint("1@2025-01-01 00:00:00.25")
        assert t.t % 1_000_000 == 250_000
