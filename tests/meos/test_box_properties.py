"""Property-based tests on STBox/TBox algebra laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.meos import STBox, TBox
from repro.meos.basetypes import FLOAT, TSTZ
from repro.meos.span import Span

_coord = st.floats(-1000, 1000, allow_nan=False)
_width = st.floats(0.1, 100, allow_nan=False)
_usecs = st.integers(0, 10**15)
_duration = st.integers(1, 10**12)


@st.composite
def _stboxes(draw):
    x = draw(_coord)
    y = draw(_coord)
    t0 = draw(_usecs)
    return STBox(
        x, y, x + draw(_width), y + draw(_width),
        Span(t0, t0 + draw(_duration), True, True, TSTZ),
    )


@st.composite
def _tboxes(draw):
    lo = draw(_coord)
    t0 = draw(_usecs)
    return TBox(
        Span(lo, lo + draw(_width), True, True, FLOAT),
        Span(t0, t0 + draw(_duration), True, True, TSTZ),
    )


class TestSTBoxProperties:
    @given(_stboxes(), _stboxes())
    @settings(max_examples=200)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(_stboxes(), _stboxes())
    @settings(max_examples=200)
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains(a)
        assert union.contains(b)

    @given(_stboxes(), _stboxes())
    @settings(max_examples=200)
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is None:
            assert not a.overlaps(b)
        else:
            assert a.contains(inter)
            assert b.contains(inter)
            assert a.overlaps(b)

    @given(_stboxes(), st.floats(0, 50))
    @settings(max_examples=150)
    def test_expand_space_monotone(self, box, amount):
        expanded = box.expand_space(amount)
        assert expanded.contains(box)
        assert expanded.area() >= box.area()

    @given(_stboxes())
    @settings(max_examples=150)
    def test_text_round_trip(self, box):
        assert STBox.parse(str(box)).overlaps(box)

    @given(_stboxes())
    @settings(max_examples=150)
    def test_contains_reflexive(self, box):
        assert box.contains(box)
        assert box.overlaps(box)

    @given(_stboxes())
    @settings(max_examples=100)
    def test_geometry_round_trip_bounds(self, box):
        geom = box.to_geometry()
        xmin, ymin, xmax, ymax = geom.bounds()
        assert xmin == pytest.approx(box.xmin)
        assert ymax == pytest.approx(box.ymax)


class TestTBoxProperties:
    @given(_tboxes(), _tboxes())
    @settings(max_examples=200)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(_tboxes(), _tboxes())
    @settings(max_examples=200)
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains(a)
        assert union.contains(b)

    @given(_tboxes())
    @settings(max_examples=150)
    def test_round_trip(self, box):
        parsed = TBox.parse(str(box))
        assert parsed.contains(box) or parsed.overlaps(box)
