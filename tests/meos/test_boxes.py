"""TBox / STBox tests, including the paper's §3.5 examples."""

import pytest

from repro.meos import Interval, MeosError, MeosTypeError, STBox, TBox
from repro.meos.boxes import stbox, tbox


class TestTBoxParsing:
    def test_xt(self):
        b = tbox("TBOXFLOAT XT([1.0,2.0],[2025-01-01,2025-01-02])")
        assert b.has_x and b.has_t
        assert b.vspan.lower == 1.0

    def test_x_only(self):
        b = tbox("TBOXFLOAT X([1.5, 2.5])")
        assert b.has_x and not b.has_t

    def test_t_only(self):
        b = tbox("TBOX T([2025-01-01, 2025-01-02])")
        assert b.has_t and not b.has_x

    def test_int_subtype_canonicalizes(self):
        b = tbox("TBOXINT X([1, 3])")
        assert str(b) == "TBOXINT X([1, 4))"

    def test_round_trip(self):
        text = "TBOXFLOAT XT([1, 2],[2025-01-01 00:00:00+00, " \
               "2025-01-02 00:00:00+00])"
        assert str(tbox(text)) == text

    def test_no_dimension_rejected(self):
        with pytest.raises(MeosError):
            TBox()

    def test_bad_literal(self):
        with pytest.raises(MeosError):
            tbox("TBOX Y([1,2])")


class TestTBoxOperations:
    def test_expand_time_paper_example(self):
        b = tbox("TBOXFLOAT XT([1.0,2.0],[2025-01-01,2025-01-02])")
        got = b.expand_time(Interval.parse("1 day"))
        assert str(got) == (
            "TBOXFLOAT XT([1, 2],[2024-12-31 00:00:00+00, "
            "2025-01-03 00:00:00+00])"
        )

    def test_expand_value(self):
        b = tbox("TBOXFLOAT X([1, 2])")
        assert str(b.expand_value(1.0)) == "TBOXFLOAT X([0, 3])"

    def test_expand_missing_dimension(self):
        with pytest.raises(MeosTypeError):
            tbox("TBOX T([2025-01-01,2025-01-02])").expand_value(1.0)

    def test_overlaps(self):
        a = tbox("TBOXFLOAT X([1, 5])")
        b = tbox("TBOXFLOAT X([4, 9])")
        c = tbox("TBOXFLOAT X([6, 9])")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlaps_checks_shared_dims_only(self):
        a = tbox("TBOXFLOAT XT([1, 5],[2025-01-01,2025-01-02])")
        b = tbox("TBOXFLOAT X([4, 9])")
        assert a.overlaps(b)

    def test_contains(self):
        outer = tbox("TBOXFLOAT XT([0, 10],[2025-01-01,2025-01-10])")
        inner = tbox("TBOXFLOAT XT([2, 3],[2025-01-02,2025-01-03])")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_union_intersection(self):
        a = tbox("TBOXFLOAT X([1, 5])")
        b = tbox("TBOXFLOAT X([4, 9])")
        assert str(a.union(b)) == "TBOXFLOAT X([1, 9])"
        assert str(a.intersection(b)) == "TBOXFLOAT X([4, 5])"
        assert a.intersection(tbox("TBOXFLOAT X([20, 30])")) is None


class TestSTBoxParsing:
    def test_x_form(self):
        b = stbox("STBOX X((10.0,20.0),(10.0,20.0))")
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (10, 20, 10, 20)
        assert not b.has_t

    def test_xt_form(self):
        b = stbox(
            "STBOX XT(((1.0,2.0),(3.0,4.0)),[2025-01-01,2025-01-02])"
        )
        assert b.has_x and b.has_t
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (1, 2, 3, 4)

    def test_t_form(self):
        b = stbox("STBOX T([2025-01-01, 2025-01-02])")
        assert b.has_t and not b.has_x

    def test_srid_prefix(self):
        b = stbox("SRID=4326;STBOX X((0,0),(1,1))")
        assert b.srid == 4326
        assert str(b).startswith("SRID=4326;")

    def test_corner_normalization(self):
        b = stbox("STBOX X((5,5),(1,1))")
        assert (b.xmin, b.xmax) == (1, 5)

    def test_geodetic(self):
        b = stbox("GEODSTBOX T([2025-01-01,2025-01-02])")
        assert b.geodetic

    def test_bad_literal(self):
        with pytest.raises(MeosError):
            stbox("STBOX ((1,2),(3,4))")


class TestSTBoxOperations:
    def test_expand_space_paper_example(self):
        b = stbox("STBOX XT(((1.0,2.0),(1.0,2.0)),[2025-01-01,2025-01-01])")
        got = b.expand_space(2.0)
        assert str(got) == (
            "STBOX XT(((-1,0),(3,4)),[2025-01-01 00:00:00+00, "
            "2025-01-01 00:00:00+00])"
        )

    def test_expand_time(self):
        b = stbox("STBOX T([2025-01-02, 2025-01-03])")
        got = b.expand_time(Interval.parse("1 day"))
        assert got.tspan.lower < b.tspan.lower
        assert got.tspan.upper > b.tspan.upper

    def test_overlaps(self):
        a = stbox("STBOX X((0,0),(10,10))")
        assert a.overlaps(stbox("STBOX X((5,5),(15,15))"))
        assert not a.overlaps(stbox("STBOX X((11,11),(12,12))"))

    def test_overlaps_time_dimension(self):
        a = stbox("STBOX XT(((0,0),(10,10)),[2025-01-01,2025-01-02])")
        b = stbox("STBOX XT(((5,5),(6,6)),[2025-01-05,2025-01-06])")
        assert not a.overlaps(b)  # spatial yes, temporal no

    def test_srid_mismatch_raises(self):
        a = stbox("SRID=4326;STBOX X((0,0),(1,1))")
        b = stbox("SRID=3857;STBOX X((0,0),(1,1))")
        with pytest.raises(MeosError):
            a.overlaps(b)

    def test_contains(self):
        outer = stbox("STBOX X((0,0),(10,10))")
        assert outer.contains(stbox("STBOX X((1,1),(2,2))"))
        assert not outer.contains(stbox("STBOX X((9,9),(11,11))"))

    def test_union_intersection(self):
        a = stbox("STBOX X((0,0),(4,4))")
        b = stbox("STBOX X((2,2),(8,8))")
        u = a.union(b)
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0, 0, 8, 8)
        i = a.intersection(b)
        assert (i.xmin, i.ymin, i.xmax, i.ymax) == (2, 2, 4, 4)

    def test_area(self):
        assert stbox("STBOX X((0,0),(4,5))").area() == 20.0

    def test_to_geometry(self):
        poly = stbox("STBOX X((0,0),(4,4))").to_geometry()
        assert poly.area() == 16.0
        point = stbox("STBOX X((3,3),(3,3))").to_geometry()
        assert (point.x, point.y) == (3, 3)

    def test_to_tstzspan(self):
        b = stbox("STBOX T([2025-01-01, 2025-01-02])")
        assert str(b.to_tstzspan()).startswith("[2025-01-01")
        with pytest.raises(MeosTypeError):
            stbox("STBOX X((0,0),(1,1))").to_tstzspan()

    def test_from_geometry(self):
        from repro.geo import parse_wkt

        b = STBox.from_geometry(parse_wkt("LINESTRING(0 0, 4 2)"))
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (0, 0, 4, 2)

    def test_transform(self):
        b = STBox(105.8, 21.0, 105.9, 21.1, srid=4326)
        out = b.transform(32648)
        assert out.srid == 32648
        assert out.xmax - out.xmin > 1000  # metres now
