"""Azimuth, direction, convex hull of temporal points + geo convex hull."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import geo, meos
from repro.geo import (
    GeometryError,
    LineString,
    MultiPoint,
    Point,
    Polygon,
    convex_hull,
    point_in_polygon,
)


class TestGeoConvexHull:
    def test_triangle(self):
        hull = convex_hull(MultiPoint([Point(0, 0), Point(4, 0),
                                       Point(2, 3)]))
        assert isinstance(hull, Polygon)
        assert hull.area() == pytest.approx(6.0)

    def test_interior_points_dropped(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10),
               Point(5, 5), Point(2, 7)]
        hull = convex_hull(MultiPoint(pts))
        assert len(hull.shell) == 5  # closed square

    def test_collinear_becomes_linestring(self):
        hull = convex_hull(
            MultiPoint([Point(0, 0), Point(1, 1), Point(2, 2)])
        )
        assert isinstance(hull, LineString)

    def test_single_point(self):
        hull = convex_hull(Point(3, 4))
        assert hull == Point(3, 4)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            convex_hull(LineString([]))

    @given(st.lists(
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
        min_size=3, max_size=30,
    ))
    @settings(max_examples=100)
    def test_hull_contains_all_points(self, coords):
        geom = MultiPoint([Point(x, y) for x, y in coords])
        hull = convex_hull(geom)
        if isinstance(hull, Polygon):
            for point in coords:
                assert point_in_polygon(point, hull)


class TestAzimuthDirection:
    def test_east(self):
        t = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(5 0)@2025-01-02]")
        assert meos.direction(t) == pytest.approx(math.pi / 2)

    def test_north(self):
        t = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(0 5)@2025-01-02]")
        assert meos.direction(t) == pytest.approx(0.0)

    def test_south_west(self):
        t = meos.tgeompoint(
            "[Point(0 0)@2025-01-01, Point(-1 -1)@2025-01-02]"
        )
        assert meos.direction(t) == pytest.approx(math.pi * 1.25)

    def test_azimuth_step_values(self):
        t = meos.tgeompoint(
            "[Point(0 0)@2025-01-01, Point(1 0)@2025-01-02, "
            "Point(1 1)@2025-01-03]"
        )
        az = meos.azimuth(t)
        from repro.meos.timetypes import parse_timestamptz as ts

        assert az.value_at_timestamp(ts("2025-01-01 12:00:00")) == \
            pytest.approx(math.pi / 2)
        assert az.value_at_timestamp(ts("2025-01-02 12:00:00")) == \
            pytest.approx(0.0)

    def test_azimuth_requires_linear(self):
        t = meos.tgeompoint("{Point(0 0)@2025-01-01, Point(1 1)@2025-01-02}")
        with pytest.raises(meos.MeosError):
            meos.azimuth(t)

    def test_convex_hull_of_trip(self):
        t = meos.tgeompoint(
            "[Point(0 0)@2025-01-01, Point(4 0)@2025-01-02, "
            "Point(2 3)@2025-01-03]"
        )
        hull = meos.convex_hull(t)
        assert isinstance(hull, Polygon)
        assert geo.contains(hull, geo.Point(2, 1))
