"""Constructors (from_base_*) and temporal aggregate functions."""

import pytest

from repro import meos
from repro.meos import tstzset, tstzspan, tstzspanset
from repro.meos.temporal import (
    Interp,
    TInstant,
    extent_stbox,
    extent_tbox,
    extent_tstzspan,
    from_base_time,
    merge_all,
    sequence_from_instants,
    tcount,
)
from repro.meos.temporal.ttypes import TFLOAT, TGEOMPOINT, TINT
from repro.meos.timetypes import parse_timestamptz as ts


class TestFactory:
    def test_from_base_timestamp(self):
        t = from_base_time(TINT, 5, ts("2025-01-01"))
        assert isinstance(t, TInstant)
        assert t.value == 5

    def test_from_base_span(self):
        t = from_base_time(TFLOAT, 2.5, tstzspan("[2025-01-01, 2025-01-03]"))
        assert t.num_instants() == 2
        assert t.always(lambda v: v == 2.5)

    def test_from_base_span_step_interp(self):
        t = from_base_time(
            TGEOMPOINT, "Point(1 1)",
            tstzspan("[2025-01-01, 2025-01-02]"), "step",
        )
        assert t.interp is Interp.STEP

    def test_from_base_set(self):
        t = from_base_time(TINT, 7, tstzset("{2025-01-01, 2025-01-05}"))
        assert t.interp is Interp.DISCRETE
        assert t.num_instants() == 2

    def test_from_base_spanset(self):
        frame = tstzspanset(
            "{[2025-01-01, 2025-01-02], [2025-01-05, 2025-01-06]}"
        )
        t = from_base_time(TINT, 7, frame)
        assert t.num_sequences() == 2

    def test_degenerate_span(self):
        t = from_base_time(TFLOAT, 1.0, tstzspan("[2025-01-01, 2025-01-01]"))
        assert t.num_instants() == 1

    def test_sequence_from_instants_sorts_and_dedups(self):
        instants = [
            TInstant(TFLOAT, 2.0, ts("2025-01-02")),
            TInstant(TFLOAT, 1.0, ts("2025-01-01")),
            TInstant(TFLOAT, 2.0, ts("2025-01-02")),  # duplicate ts
        ]
        seq = sequence_from_instants(instants)
        assert seq.num_instants() == 2
        assert seq.start_value() == 1.0

    def test_sequence_from_instants_empty(self):
        with pytest.raises(meos.MeosError):
            sequence_from_instants([])


class TestAggregates:
    TRIPS = [
        meos.tgeompoint("[Point(0 0)@2025-01-01, Point(2 2)@2025-01-02]"),
        meos.tgeompoint("[Point(5 5)@2025-01-03, Point(9 1)@2025-01-04]"),
    ]

    def test_extent_stbox(self):
        box = extent_stbox(self.TRIPS)
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (0, 0, 9, 5)
        assert box.tspan.lower == ts("2025-01-01")
        assert box.tspan.upper == ts("2025-01-04")

    def test_extent_stbox_skips_none(self):
        box = extent_stbox([None, self.TRIPS[0], None])
        assert box.xmax == 2

    def test_extent_stbox_empty(self):
        assert extent_stbox([]) is None

    def test_extent_tbox(self):
        values = [
            meos.tfloat("[1@2025-01-01, 5@2025-01-02]"),
            meos.tfloat("[0@2025-01-03, 2@2025-01-04]"),
        ]
        box = extent_tbox(values)
        assert box.vspan.lower == 0
        assert box.vspan.upper == 5

    def test_extent_tstzspan(self):
        span = extent_tstzspan(self.TRIPS)
        assert span.lower == ts("2025-01-01")
        assert span.upper == ts("2025-01-04")

    def test_tcount_overlap(self):
        values = [
            meos.tfloat("[1@2025-01-01, 1@2025-01-03]"),
            meos.tfloat("[1@2025-01-02, 1@2025-01-04]"),
        ]
        counts = tcount(values)
        assert counts.value_at_timestamp(ts("2025-01-01 12:00:00")) == 1
        assert counts.value_at_timestamp(ts("2025-01-02 12:00:00")) == 2
        assert counts.value_at_timestamp(ts("2025-01-03 12:00:00")) == 1

    def test_merge_all(self):
        merged = merge_all(self.TRIPS)
        assert merged.num_sequences() == 2
        assert merge_all([]) is None
