"""Lifted operator machinery: synchronization, tbool assembly, compare."""

import operator

import pytest

from repro import meos
from repro.meos.basetypes import TSTZ
from repro.meos.span import Span
from repro.meos.temporal import (
    Interp,
    TInstant,
    synchronize,
    tbool_from_pieces,
    temporal_compare,
    when_true,
)
from repro.meos.temporal.lifted import quadratic_below
from repro.meos.temporal.ttypes import TBOOL
from repro.meos.timetypes import parse_timestamptz as ts


class TestSynchronize:
    def test_overlapping_sequences_split_at_breakpoints(self):
        a = meos.tfloat("[0@2025-01-01, 10@2025-01-11]")
        b = meos.tfloat("[5@2025-01-03, 5@2025-01-07, 9@2025-01-09]")
        segments = list(synchronize(a, b))
        boundaries = [seg.t0 for seg in segments] + [segments[-1].t1]
        assert boundaries == [
            ts("2025-01-03"), ts("2025-01-07"), ts("2025-01-09")
        ]
        # Endpoint values interpolate on both operands.
        first = segments[0]
        assert first.a0 == pytest.approx(2.0)
        assert first.b0 == 5.0

    def test_disjoint_time_yields_nothing(self):
        a = meos.tfloat("[0@2025-01-01, 1@2025-01-02]")
        b = meos.tfloat("[0@2026-01-01, 1@2026-01-02]")
        assert list(synchronize(a, b)) == []

    def test_discrete_pair_shares_instants(self):
        a = meos.tint("{1@2025-01-01, 2@2025-01-02, 3@2025-01-03}")
        b = meos.tint("{9@2025-01-02, 9@2025-01-04}")
        segments = list(synchronize(a, b))
        assert len(segments) == 1
        assert segments[0].t0 == segments[0].t1 == ts("2025-01-02")
        assert (segments[0].a0, segments[0].b0) == (2, 9)

    def test_discrete_against_continuous(self):
        a = meos.tint("{1@2025-01-01 12:00:00}")
        b = meos.tfloat("[0@2025-01-01, 10@2025-01-02]")
        segments = list(synchronize(a, b))
        assert len(segments) == 1
        assert segments[0].b0 == pytest.approx(5.0)

    def test_step_operand_holds_value(self):
        a = meos.tint("[1@2025-01-01, 5@2025-01-03]")  # step
        b = meos.tfloat("[0@2025-01-01, 1@2025-01-03]")
        segments = list(synchronize(a, b))
        for seg in segments:
            assert seg.a0 == seg.a1  # step: constant per segment

    def test_seqset_gap_respected(self):
        a = meos.tfloat(
            "{[0@2025-01-01, 1@2025-01-02], [5@2025-01-05, 6@2025-01-06]}"
        )
        b = meos.tfloat("[0@2025-01-01, 10@2025-01-06]")
        segments = list(synchronize(a, b))
        covered = sum(seg.t1 - seg.t0 for seg in segments)
        assert covered == 2 * 86_400_000_000  # the gap contributes nothing


class TestTboolAssembly:
    def _span(self, lo, hi, lo_inc=True, hi_inc=True):
        return Span(ts(lo), ts(hi), lo_inc, hi_inc, TSTZ)

    def test_merges_equal_adjacent(self):
        pieces = [
            (self._span("2025-01-01", "2025-01-02", True, False), True),
            (self._span("2025-01-02", "2025-01-03"), True),
        ]
        result = tbool_from_pieces(pieces)
        assert result.num_instants() == 2  # one run of true

    def test_alternating_values(self):
        pieces = [
            (self._span("2025-01-01", "2025-01-02", True, False), False),
            (self._span("2025-01-02", "2025-01-03"), True),
        ]
        result = tbool_from_pieces(pieces)
        spans = when_true(result)
        assert spans.num_spans() == 1
        assert spans.start_span().lower == ts("2025-01-02")

    def test_empty(self):
        assert tbool_from_pieces([]) is None

    def test_when_true_discrete(self):
        t = meos.tbool("{t@2025-01-01, f@2025-01-02, t@2025-01-03}")
        spans = when_true(t)
        assert spans.num_spans() == 2
        assert all(s.lower == s.upper for s in spans)

    def test_when_true_all_false(self):
        t = meos.tbool("[f@2025-01-01, f@2025-01-02]")
        assert when_true(t) is None

    def test_when_true_requires_tbool(self):
        with pytest.raises(Exception):
            when_true(meos.tint("1@2025-01-01"))


class TestTemporalCompare:
    def test_crossing_splits(self):
        t = meos.tfloat("[0@2025-01-01, 10@2025-01-11]")
        result = temporal_compare(t, 5.0, operator.gt)
        spans = when_true(result)
        assert spans.num_spans() == 1
        assert spans.start_span().lower == ts("2025-01-06")

    def test_step_no_split(self):
        t = meos.tint("[1@2025-01-01, 9@2025-01-05, 1@2025-01-09]")
        result = temporal_compare(t, 5, operator.gt)
        spans = when_true(result)
        assert spans.start_span().lower == ts("2025-01-05")
        assert spans.start_span().upper == ts("2025-01-09")

    def test_discrete(self):
        t = meos.tint("{1@2025-01-01, 7@2025-01-02}")
        result = temporal_compare(t, 5, operator.ge)
        assert result.interp is Interp.DISCRETE
        assert result.values() == [False, True]

    def test_equality_at_crossing_instant(self):
        t = meos.tfloat("[0@2025-01-01, 10@2025-01-11]")
        result = temporal_compare(t, 5.0, operator.eq)
        spans = when_true(result)
        assert spans.num_spans() == 1
        span = spans.start_span()
        assert span.lower == span.upper == ts("2025-01-06")


class TestQuadratic:
    def test_always_below(self):
        assert quadratic_below(0.0, 0.0, 1.0, 4.0) == [(0.0, 1.0)]

    def test_never_below(self):
        assert quadratic_below(0.0, 0.0, 9.0, 4.0) == []

    def test_parabola_window(self):
        # d^2(s) = (10s - 5)^2: within 2 of zero when |10s-5| <= 2
        windows = quadratic_below(100.0, -100.0, 25.0, 4.0)
        assert len(windows) == 1
        lo, hi = windows[0]
        assert lo == pytest.approx(0.3)
        assert hi == pytest.approx(0.7)

    def test_linear_case(self):
        # d^2(s) = 16s: below 4 when s <= 0.25
        windows = quadratic_below(0.0, 16.0, 0.0, 4.0)
        assert windows == [(0.0, 0.25)]

    def test_clamped_to_unit_interval(self):
        windows = quadratic_below(1.0, 0.0, 0.0, 100.0)
        assert windows == [(0.0, 1.0)]
