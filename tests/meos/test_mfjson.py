"""MF-JSON serialization tests (OGC Moving Features JSON, MEOS asMFJSON)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import meos
from repro.meos import MeosError, as_mfjson, as_mfjson_dict, from_mfjson
from repro.meos.temporal import TInstant, TSequence
from repro.meos.temporal.interp import Interp
from repro.meos.temporal.ttypes import TGEOMPOINT


class TestSerialization:
    def test_moving_point_layout(self):
        t = meos.tgeompoint(
            "[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02]"
        )
        doc = as_mfjson_dict(t)
        assert doc["type"] == "MovingPoint"
        assert doc["coordinates"] == [[1.0, 1.0], [2.0, 2.0]]
        assert doc["datetimes"][0].startswith("2025-01-01T00:00:00")
        assert doc["interpolation"] == "Linear"
        assert doc["lower_inc"] and doc["upper_inc"]

    def test_crs_included_when_srid(self):
        t = meos.tgeompoint("SRID=3857;Point(0 0)@2025-01-01")
        doc = as_mfjson_dict(t)
        assert doc["crs"]["properties"]["name"] == "EPSG:3857"

    def test_bbox_and_period(self):
        t = meos.tgeompoint(
            "[Point(0 0)@2025-01-01, Point(3 4)@2025-01-02]"
        )
        doc = as_mfjson_dict(t, with_bbox=True)
        assert doc["bbox"] == [0.0, 0.0, 3.0, 4.0]
        assert doc["period"]["begin"].startswith("2025-01-01")

    def test_moving_float_uses_values(self):
        t = meos.tfloat("[1.5@2025-01-01, 2.5@2025-01-02]")
        doc = as_mfjson_dict(t)
        assert doc["type"] == "MovingFloat"
        assert doc["values"] == [1.5, 2.5]

    def test_sequence_set(self):
        t = meos.tfloat(
            "{[1@2025-01-01, 2@2025-01-02], [5@2025-01-05, 6@2025-01-06]}"
        )
        doc = as_mfjson_dict(t)
        assert len(doc["sequences"]) == 2

    def test_step_interpolation_tag(self):
        t = meos.tint("[1@2025-01-01, 2@2025-01-02]")
        assert as_mfjson_dict(t)["interpolation"] == "Step"

    def test_discrete_tag(self):
        t = meos.tint("{1@2025-01-01, 2@2025-01-02}")
        assert as_mfjson_dict(t)["interpolation"] == "Discrete"

    def test_moving_geometry_wkt_values(self):
        t = meos.tgeometry(
            "[Point(1 1)@2025-01-01, Point(1 1)@2025-01-02]"
        )
        doc = as_mfjson_dict(t)
        assert doc["type"] == "MovingGeometry"
        assert doc["values"] == ["POINT(1 1)", "POINT(1 1)"]

    def test_json_is_valid(self):
        t = meos.ttext('["a"@2025-01-01, "b"@2025-01-02]')
        json.loads(as_mfjson(t))


class TestParsing:
    def test_round_trip_cases(self):
        cases = [
            meos.tgeompoint("Point(1 2)@2025-01-01"),
            meos.tgeompoint("{Point(1 2)@2025-01-01, "
                            "Point(3 4)@2025-01-02}"),
            meos.tgeompoint("[Point(1 2)@2025-01-01, "
                            "Point(3 4)@2025-01-02)"),
            meos.tgeompoint("SRID=4326;[Point(1 2)@2025-01-01, "
                            "Point(3 4)@2025-01-02]"),
            meos.tfloat("[1.5@2025-01-01, 2.5@2025-01-02]"),
            meos.tint("{1@2025-01-01, 2@2025-01-02}"),
            meos.tbool("[t@2025-01-01, f@2025-01-02]"),
            meos.ttext('["a"@2025-01-01, "b"@2025-01-02]'),
            meos.tfloat("{[1@2025-01-01, 2@2025-01-02], "
                        "[5@2025-01-05, 6@2025-01-06]}"),
        ]
        for value in cases:
            assert from_mfjson(as_mfjson(value)) == value, str(value)

    def test_unknown_type_rejected(self):
        with pytest.raises(MeosError):
            from_mfjson('{"type": "MovingBlob"}')

    def test_malformed_json_rejected(self):
        with pytest.raises(MeosError):
            from_mfjson("{not json")

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(MeosError):
            from_mfjson(
                '{"type": "MovingFloat", "values": [1, 2], '
                '"datetimes": ["2025-01-01T00:00:00+00:00"], '
                '"interpolation": "Linear"}'
            )

    def test_unknown_interpolation_rejected(self):
        with pytest.raises(MeosError):
            from_mfjson(
                '{"type": "MovingFloat", "values": [1], '
                '"datetimes": ["2025-01-01T00:00:00+00:00"], '
                '"interpolation": "Cubic"}'
            )


class TestSqlIntegration:
    def test_round_trip_through_sql(self):
        from repro import core

        con = core.connect()
        got = con.execute(
            "SELECT tfloatFromMFJSON(asMFJSON("
            "'[1.5@2025-01-01, 2.5@2025-01-02]'::TFLOAT))::VARCHAR"
        ).scalar()
        assert got == ("[1.5@2025-01-01 00:00:00+00, "
                       "2.5@2025-01-02 00:00:00+00]")

    def test_type_check_on_parse(self):
        from repro import core
        from repro.quack import QuackError

        con = core.connect()
        with pytest.raises(QuackError):
            con.execute(
                "SELECT tintFromMFJSON(asMFJSON("
                "'[1.5@2025-01-01, 2.5@2025-01-02]'::TFLOAT))"
            )


@st.composite
def _point_sequences(draw):
    n = draw(st.integers(2, 5))
    times = sorted(draw(st.lists(
        st.integers(0, 10**9), min_size=n, max_size=n, unique=True
    )))
    from repro import geo

    instants = [
        TInstant(
            TGEOMPOINT,
            geo.Point(draw(st.floats(-100, 100)),
                      draw(st.floats(-100, 100))),
            t * 1_000_000,
        )
        for t in times
    ]
    return TSequence(TGEOMPOINT, instants, draw(st.booleans()),
                     draw(st.booleans()), Interp.LINEAR)


class TestProperties:
    @given(_point_sequences())
    @settings(max_examples=80)
    def test_round_trip(self, seq):
        assert from_mfjson(as_mfjson(seq)) == seq
