"""Set template type tests (intset, tstzset, geomset, …)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Point
from repro.meos import Interval, MeosError, MeosTypeError
from repro.meos.basetypes import FLOAT, INT
from repro.meos.setcls import (
    Set,
    dateset,
    floatset,
    geomset,
    intset,
    parse_set,
    textset,
    tstzset,
)


class TestParsing:
    def test_sorted_and_deduplicated(self):
        assert str(intset("{3, 1, 2, 1}")) == "{1, 2, 3}"

    def test_floatset(self):
        assert str(floatset("{1.5, 0.5}")) == "{0.5, 1.5}"

    def test_textset_quotes(self):
        s = textset('{"b", "a"}')
        assert s.values == ("a", "b")
        assert str(s) == '{"a", "b"}'

    def test_tstzset(self):
        s = tstzset("{2025-01-02, 2025-01-01}")
        assert str(s) == (
            "{2025-01-01 00:00:00+00, 2025-01-02 00:00:00+00}"
        )

    def test_geomset_with_srid(self):
        s = geomset("SRID=4326;{Point(1 1), Point(0 0)}")
        assert s.srid() == 4326
        assert all(isinstance(v, Point) for v in s.values)

    def test_geomset_format_quotes(self):
        s = geomset("{Point(1 1)}")
        assert str(s) == '{"POINT(1 1)"}'

    def test_empty_rejected(self):
        with pytest.raises(MeosError):
            intset("{}")

    def test_unknown_type(self):
        with pytest.raises(MeosError):
            parse_set("{1}", "nosuchset")


class TestAccessors:
    def test_start_end(self):
        s = intset("{5, 1, 9}")
        assert s.start_value() == 1
        assert s.end_value() == 9

    def test_value_n_one_based(self):
        s = intset("{10, 20, 30}")
        assert s.value_at(1) == 10
        assert s.value_at(3) == 30
        with pytest.raises(MeosError):
            s.value_at(0)
        with pytest.raises(MeosError):
            s.value_at(4)

    def test_len_iter(self):
        s = intset("{1, 2, 3}")
        assert len(s) == 3
        assert list(s) == [1, 2, 3]

    def test_to_span(self):
        span = intset("{1, 5, 9}").to_span()
        assert span.contains_value(5)
        assert span.lower == 1

    def test_geomset_has_no_span(self):
        with pytest.raises(MeosTypeError):
            geomset("{Point(0 0)}").to_span()

    def test_mem_size_positive_and_monotonic(self):
        small = intset("{1}")
        big = intset("{1, 2, 3, 4, 5}")
        assert 0 < small.mem_size() < big.mem_size()


class TestSetOperations:
    def test_contains(self):
        s = intset("{1, 2, 3}")
        assert s.contains_value(2)
        assert not s.contains_value(7)
        assert s.contains_set(intset("{1, 3}"))
        assert not s.contains_set(intset("{1, 9}"))

    def test_overlaps(self):
        assert intset("{1, 2}").overlaps(intset("{2, 3}"))
        assert not intset("{1, 2}").overlaps(intset("{3, 4}"))

    def test_union(self):
        assert str(intset("{1, 2}").union(intset("{2, 3}"))) == "{1, 2, 3}"

    def test_intersection(self):
        got = intset("{1, 2, 3}").intersection(intset("{2, 3, 4}"))
        assert str(got) == "{2, 3}"
        assert intset("{1}").intersection(intset("{2}")) is None

    def test_minus(self):
        assert str(intset("{1, 2, 3}").minus(intset("{2}"))) == "{1, 3}"
        assert intset("{1}").minus(intset("{1}")) is None

    def test_geomset_membership(self):
        s = geomset("{Point(0 0), Point(1 1)}")
        assert s.contains_value(Point(1, 1))
        assert not s.contains_value(Point(2, 2))


class TestTransformations:
    def test_shift_scale_paper_example(self):
        s = tstzset("{2025-01-01, 2025-01-02}")
        got = s.shift_scale(Interval.parse("1 day"),
                            Interval.parse("1 hour"))
        assert str(got) == (
            "{2025-01-02 00:00:00+00, 2025-01-02 01:00:00+00}"
        )

    def test_shift_numeric(self):
        assert str(intset("{1, 2}").shift_scale(shift=10)) == "{11, 12}"

    def test_scale_numeric(self):
        got = floatset("{0, 1, 2}").shift_scale(width=10.0)
        assert got.values == (0.0, 5.0, 10.0)

    def test_tstzset_shift_requires_interval(self):
        with pytest.raises(MeosTypeError):
            tstzset("{2025-01-01}").shift_scale(shift=5)

    def test_transform_paper_example(self):
        s = geomset(
            "SRID=4326;{Point(2.340088 49.400250), "
            "Point(6.575317 51.553167)}"
        )
        out = s.transform(3812)
        assert out.srid() == 3812
        xs = sorted(v.x for v in out.values)
        assert xs[0] == pytest.approx(502773.43, abs=0.5)
        assert xs[1] == pytest.approx(803028.91, abs=0.5)

    def test_map_values_int_to_float(self):
        got = intset("{1, 2}").map_values(float, FLOAT)
        assert got.basetype is FLOAT
        assert got.values == (1.0, 2.0)


class TestProperties:
    ints = st.lists(st.integers(-1000, 1000), min_size=1, max_size=20)

    @given(ints, ints)
    @settings(max_examples=150)
    def test_union_commutative(self, a, b):
        sa = Set.from_values(a, INT)
        sb = Set.from_values(b, INT)
        assert sa.union(sb) == sb.union(sa)

    @given(ints, ints)
    @settings(max_examples=150)
    def test_demorgan_like_partition(self, a, b):
        sa = Set.from_values(a, INT)
        sb = Set.from_values(b, INT)
        inter = sa.intersection(sb)
        minus = sa.minus(sb)
        count = (len(inter) if inter else 0) + (len(minus) if minus else 0)
        assert count == len(sa)

    @given(ints)
    @settings(max_examples=100)
    def test_round_trip(self, values):
        s = Set.from_values(values, INT)
        assert Set.parse(str(s), INT) == s
