"""Span template type tests (intspan, floatspan, tstzspan, …)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.meos import Interval, MeosError, MeosTypeError
from repro.meos.basetypes import FLOAT, INT
from repro.meos.span import (
    Span,
    datespan,
    floatspan,
    intspan,
    parse_span,
    tstzspan,
)


class TestParsingAndCanonicalization:
    def test_intspan_canonical(self):
        # MobilityDB: discrete spans normalize to [lo, hi)
        assert str(intspan("[1, 3]")) == "[1, 4)"
        assert str(intspan("(1, 3]")) == "[2, 4)"
        assert str(intspan("[1, 3)")) == "[1, 3)"

    def test_floatspan_not_canonicalized(self):
        assert str(floatspan("[1.5, 3.5)")) == "[1.5, 3.5)"
        assert str(floatspan("(1, 3)")) == "(1, 3)"

    def test_tstzspan(self):
        s = tstzspan("[2025-01-01, 2025-01-02)")
        assert str(s) == (
            "[2025-01-01 00:00:00+00, 2025-01-02 00:00:00+00)"
        )

    def test_datespan_canonical(self):
        assert str(datespan("[2025-01-01, 2025-01-02]")) == (
            "[2025-01-01, 2025-01-03)"
        )

    def test_degenerate_span(self):
        s = floatspan("[5, 5]")
        assert s.lower == s.upper == 5

    def test_empty_rejected(self):
        with pytest.raises(MeosError):
            floatspan("[5, 5)")
        with pytest.raises(MeosError):
            floatspan("[7, 3]")

    def test_bad_literals(self):
        with pytest.raises(MeosError):
            intspan("1, 3")
        with pytest.raises(MeosError):
            intspan("[1]")
        with pytest.raises(MeosError):
            parse_span("[1,2]", "nosuchspan")

    def test_parse_by_name(self):
        assert parse_span("[1, 2]", "intspan").basetype is INT


class TestPredicates:
    def test_contains_value(self):
        s = floatspan("[1, 3)")
        assert s.contains_value(1.0)
        assert s.contains_value(2.0)
        assert not s.contains_value(3.0)
        assert not s.contains_value(0.5)

    def test_contains_span(self):
        outer = floatspan("[0, 10]")
        assert outer.contains_span(floatspan("[2, 3]"))
        assert outer.contains_span(floatspan("[0, 10]"))
        assert not outer.contains_span(floatspan("[5, 11]"))
        assert not floatspan("(0, 10]").contains_span(floatspan("[0, 1]"))

    def test_overlaps(self):
        assert floatspan("[1, 3]").overlaps(floatspan("[2, 5]"))
        assert floatspan("[1, 3]").overlaps(floatspan("[3, 5]"))
        assert not floatspan("[1, 3)").overlaps(floatspan("[3, 5]"))
        assert not floatspan("[1, 2]").overlaps(floatspan("[3, 5]"))

    def test_left_right(self):
        a = floatspan("[1, 2]")
        b = floatspan("[3, 4]")
        assert a.is_left(b)
        assert b.is_right(a)
        assert not b.is_left(a)

    def test_adjacent(self):
        assert floatspan("[1, 2)").is_adjacent(floatspan("[2, 3]"))
        assert not floatspan("[1, 2]").is_adjacent(floatspan("[2, 3]"))
        assert not floatspan("[1, 2)").is_adjacent(floatspan("(2, 3]"))

    def test_type_mismatch(self):
        with pytest.raises(MeosTypeError):
            intspan("[1, 2]").overlaps(floatspan("[1, 2]"))


class TestSetOperations:
    def test_intersection(self):
        got = floatspan("[1, 5]").intersection(floatspan("[3, 8]"))
        assert str(got) == "[3, 5]"

    def test_intersection_disjoint(self):
        assert floatspan("[1, 2]").intersection(floatspan("[3, 4]")) is None

    def test_intersection_bound_semantics(self):
        got = floatspan("[1, 5)").intersection(floatspan("(1, 5]"))
        assert str(got) == "(1, 5)"

    def test_union(self):
        got = floatspan("[1, 3]").union(floatspan("[2, 6)"))
        assert str(got) == "[1, 6)"

    def test_union_adjacent(self):
        got = floatspan("[1, 2)").union(floatspan("[2, 3]"))
        assert str(got) == "[1, 3]"

    def test_union_disjoint_raises(self):
        with pytest.raises(MeosError):
            floatspan("[1, 2)").union(floatspan("(2, 3]"))

    def test_minus_middle(self):
        pieces = floatspan("[0, 10]").minus(floatspan("[4, 6]"))
        assert [str(p) for p in pieces] == ["[0, 4)", "(6, 10]"]

    def test_minus_overlap_left(self):
        pieces = floatspan("[0, 10]").minus(floatspan("[-5, 5]"))
        assert [str(p) for p in pieces] == ["(5, 10]"]

    def test_minus_covering(self):
        assert floatspan("[0, 10]").minus(floatspan("[-1, 11]")) == []

    def test_minus_disjoint(self):
        s = floatspan("[0, 10]")
        assert s.minus(floatspan("[20, 30]")) == [s]


class TestTransformations:
    def test_shift(self):
        assert str(floatspan("[1, 3]").shift_scale(shift=2.0)) == "[3, 5]"

    def test_scale(self):
        assert str(floatspan("[1, 3]").shift_scale(width=10.0)) == "[1, 11]"

    def test_expand(self):
        assert str(floatspan("[2, 4]").expand(1.0)) == "[1, 5]"

    def test_width(self):
        assert floatspan("[1.5, 4.0]").width() == 2.5
        assert intspan("[1, 3]").width() == 3  # canonical [1, 4)

    def test_duration(self):
        assert str(tstzspan("[2025-01-01, 2025-01-03]").duration()) == "2 days"

    def test_duration_requires_tstz(self):
        with pytest.raises(MeosTypeError):
            floatspan("[1, 2]").duration()

    def test_distance(self):
        assert floatspan("[1, 2]").distance(floatspan("[5, 6]")) == 3
        assert floatspan("[1, 5]").distance(floatspan("[2, 3]")) == 0
        assert floatspan("[1, 2]").distance_to_value(10.0) == 8


_bounds = st.tuples(
    st.floats(-1e6, 1e6, allow_nan=False),
    st.floats(-1e6, 1e6, allow_nan=False),
).filter(lambda t: t[0] < t[1])


@st.composite
def _float_spans(draw):
    lo, hi = draw(_bounds)
    return Span(lo, hi, draw(st.booleans()), draw(st.booleans()), FLOAT)


class TestProperties:
    @given(_float_spans(), _float_spans())
    @settings(max_examples=200)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(_float_spans(), _float_spans())
    @settings(max_examples=200)
    def test_intersection_contained_in_both(self, a, b):
        got = a.intersection(b)
        if got is not None:
            assert a.contains_span(got)
            assert b.contains_span(got)

    @given(_float_spans(), _float_spans())
    @settings(max_examples=200)
    def test_minus_disjoint_from_other(self, a, b):
        for piece in a.minus(b):
            assert not piece.overlaps(b)
            assert a.contains_span(piece)

    @given(_float_spans())
    @settings(max_examples=100)
    def test_parse_format_round_trip(self, span):
        assert Span.parse(str(span), FLOAT) == span
