"""SpanSet template type tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.meos import Interval, MeosError, MeosTypeError
from repro.meos.basetypes import FLOAT
from repro.meos.span import Span, floatspan, tstzspan
from repro.meos.spanset import (
    SpanSet,
    floatspanset,
    intspanset,
    tstzspanset,
)


class TestNormalization:
    def test_sorted(self):
        ss = floatspanset("{[5, 6], [1, 2]}")
        assert str(ss) == "{[1, 2], [5, 6]}"

    def test_overlapping_merged(self):
        ss = floatspanset("{[1, 3], [2, 5]}")
        assert str(ss) == "{[1, 5]}"

    def test_adjacent_merged(self):
        ss = floatspanset("{[1, 2), [2, 3]}")
        assert str(ss) == "{[1, 3]}"

    def test_non_adjacent_kept(self):
        ss = floatspanset("{[1, 2), (2, 3]}")
        assert len(ss) == 2

    def test_int_canonicalization(self):
        ss = intspanset("{[1, 2], [3, 4]}")
        # [1,2] -> [1,3) and [3,4] -> [3,5): adjacent, merged.
        assert str(ss) == "{[1, 5)}"

    def test_empty_rejected(self):
        with pytest.raises(MeosError):
            floatspanset("{}")

    def test_mixed_types_rejected(self):
        with pytest.raises(MeosTypeError):
            SpanSet.from_spans([floatspan("[1, 2]"),
                                tstzspan("[2025-01-01, 2025-01-02]")])


class TestAccessors:
    def test_bounding_span(self):
        ss = floatspanset("{[1, 2], [5, 8)}")
        assert str(ss.to_span()) == "[1, 8)"

    def test_width_sums_members(self):
        ss = floatspanset("{[0, 1], [5, 8]}")
        assert ss.width() == 4.0

    def test_duration_gaps_vs_boundspan(self):
        ss = tstzspanset("{[2025-01-01, 2025-01-02], "
                         "[2025-01-04, 2025-01-05]}")
        assert str(ss.duration()) == "2 days"
        assert str(ss.duration(boundspan=True)) == "4 days"

    def test_start_end_span(self):
        ss = floatspanset("{[1, 2], [5, 6]}")
        assert str(ss.start_span()) == "[1, 2]"
        assert str(ss.end_span()) == "[5, 6]"


class TestPredicates:
    def test_contains_value(self):
        ss = floatspanset("{[1, 2], [5, 6]}")
        assert ss.contains_value(1.5)
        assert not ss.contains_value(3.0)

    def test_contains_span(self):
        ss = floatspanset("{[1, 4], [5, 6]}")
        assert ss.contains_span(floatspan("[2, 3]"))
        assert not ss.contains_span(floatspan("[4, 5]"))

    def test_overlaps(self):
        a = floatspanset("{[1, 2], [5, 6]}")
        b = floatspanset("{[1.5, 1.6]}")
        c = floatspanset("{[3, 4]}")
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestSetOperations:
    def test_union(self):
        a = floatspanset("{[1, 2]}")
        b = floatspanset("{[1.5, 5]}")
        assert str(a.union(b)) == "{[1, 5]}"

    def test_intersection(self):
        a = floatspanset("{[1, 4], [6, 9]}")
        b = floatspanset("{[3, 7]}")
        assert str(a.intersection(b)) == "{[3, 4], [6, 7]}"

    def test_intersection_empty(self):
        a = floatspanset("{[1, 2]}")
        assert a.intersection(floatspanset("{[5, 6]}")) is None

    def test_minus(self):
        a = floatspanset("{[0, 10]}")
        b = floatspanset("{[2, 3], [5, 6]}")
        got = a.minus(b)
        assert str(got) == "{[0, 2), (3, 5), (6, 10]}"

    def test_minus_everything(self):
        a = floatspanset("{[1, 2]}")
        assert a.minus(floatspanset("{[0, 5]}")) is None


class TestTransformations:
    def test_shift(self):
        ss = floatspanset("{[1, 2], [4, 5]}")
        assert str(ss.shift_scale(shift=10.0)) == "{[11, 12], [14, 15]}"

    def test_shift_tstz_interval(self):
        ss = tstzspanset("{[2025-01-01, 2025-01-02]}")
        got = ss.shift_scale(shift=Interval.parse("1 day"))
        assert str(got) == (
            "{[2025-01-02 00:00:00+00, 2025-01-03 00:00:00+00]}"
        )

    def test_scale(self):
        ss = floatspanset("{[0, 1], [3, 4]}")
        got = ss.shift_scale(width=8.0)
        assert got.to_span().width() == 8.0


_bound = st.floats(-1000, 1000, allow_nan=False)


@st.composite
def _spansets(draw):
    spans = []
    for _ in range(draw(st.integers(1, 4))):
        lo = draw(_bound)
        width = draw(st.floats(0.1, 50))
        spans.append(Span(lo, lo + width, True, False, FLOAT))
    return SpanSet.from_spans(spans)


class TestProperties:
    @given(_spansets(), _spansets())
    @settings(max_examples=150)
    def test_minus_then_disjoint(self, a, b):
        got = a.minus(b)
        if got is not None:
            assert not got.overlaps(b)

    @given(_spansets(), _spansets())
    @settings(max_examples=150)
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_spanset(a)
        assert union.contains_spanset(b)

    @given(_spansets())
    @settings(max_examples=100)
    def test_round_trip(self, ss):
        assert SpanSet.parse(str(ss), FLOAT) == ss

    @given(_spansets())
    @settings(max_examples=100)
    def test_members_disjoint_invariant(self, ss):
        for a, b in zip(ss.spans, ss.spans[1:]):
            assert a.upper <= b.lower
            assert not a.overlaps(b)
