"""Lifted boolean algebra (tand/tor/tnot) and trajectory simplification."""

import pytest

from repro import meos
from repro.meos import MeosTypeError
from repro.meos.temporal import (
    douglas_peucker_simplify,
    min_dist_simplify,
    temporal_and,
    temporal_not,
    temporal_or,
    when_true,
)
from repro.meos.timetypes import parse_timestamptz as ts

A = meos.tbool("[t@2025-01-01, t@2025-01-03]")
B = meos.tbool("[f@2025-01-02, f@2025-01-04]")


class TestTemporalNot:
    def test_instant(self):
        assert temporal_not(meos.tbool("t@2025-01-01")).value is False

    def test_sequence(self):
        flipped = temporal_not(A)
        assert flipped.always(lambda v: v is False)
        assert flipped.tstzspan() == A.tstzspan()

    def test_discrete(self):
        t = meos.tbool("{t@2025-01-01, f@2025-01-02}")
        assert temporal_not(t).values() == [False, True]

    def test_double_negation(self):
        t = meos.tbool("[t@2025-01-01, t@2025-01-02]")
        assert temporal_not(temporal_not(t)) == t

    def test_alternating_sequence(self):
        t = meos.tbool("[t@2025-01-01, f@2025-01-02, t@2025-01-03]")
        spans = when_true(temporal_not(t))
        assert spans is not None
        assert spans.contains_value(ts("2025-01-02 12:00:00"))
        assert not spans.contains_value(ts("2025-01-01 12:00:00"))

    def test_type_checked(self):
        with pytest.raises(MeosTypeError):
            temporal_not(meos.tint("1@2025-01-01"))


class TestTemporalAndOr:
    def test_and_restricted_to_common_time(self):
        result = temporal_and(A, B)
        span = result.tstzspan()
        assert span.lower == ts("2025-01-02")
        assert span.upper == ts("2025-01-03")

    def test_and_values(self):
        assert temporal_and(A, B).always(lambda v: v is False)
        assert temporal_or(A, B).always(lambda v: v is True)

    def test_disjoint_returns_none(self):
        far = meos.tbool("[t@2026-01-01, t@2026-01-02]")
        assert temporal_and(A, far) is None

    def test_compose_with_when_true(self):
        # (A and not B) is true where both hold.
        not_b = temporal_not(B)
        both = temporal_and(A, not_b)
        spans = when_true(both)
        assert spans is not None

    def test_instants(self):
        x = meos.tbool("{t@2025-01-01, f@2025-01-02}")
        y = meos.tbool("{t@2025-01-01, t@2025-01-02}")
        result = temporal_and(x, y)
        assert result.values() == [True, False]


class TestSimplification:
    def _zigzag(self):
        return meos.tgeompoint(
            "[Point(0 0)@2025-01-01, Point(1 0.01)@2025-01-02, "
            "Point(2 -0.01)@2025-01-03, Point(3 0)@2025-01-04, "
            "Point(3 10)@2025-01-05]"
        )

    def test_douglas_peucker_drops_near_collinear(self):
        simplified = douglas_peucker_simplify(self._zigzag(), 0.5)
        assert simplified.num_instants() == 3
        # Endpoints and the sharp corner survive.
        assert simplified.start_value() == self._zigzag().start_value()
        assert simplified.end_value() == self._zigzag().end_value()

    def test_douglas_peucker_zero_tolerance_keeps_all(self):
        trip = self._zigzag()
        assert douglas_peucker_simplify(trip, 0.0).num_instants() == \
            trip.num_instants()

    def test_min_dist_simplify(self):
        trip = meos.tgeompoint(
            "[Point(0 0)@2025-01-01, Point(0.1 0)@2025-01-02, "
            "Point(0.2 0)@2025-01-03, Point(5 0)@2025-01-04]"
        )
        simplified = min_dist_simplify(trip, 1.0)
        assert simplified.num_instants() == 2

    def test_instant_passthrough(self):
        inst = meos.tgeompoint("Point(1 1)@2025-01-01")
        assert douglas_peucker_simplify(inst, 1.0) is inst
        assert min_dist_simplify(inst, 1.0) is inst

    def test_simplified_stays_within_tolerance(self):
        trip = self._zigzag()
        simplified = douglas_peucker_simplify(trip, 0.5)
        # Every dropped point is within tolerance of the simplified path.
        traj = meos.trajectory(simplified)
        from repro import geo

        for inst in trip.instants():
            assert geo.distance(inst.value, traj) <= 0.5 + 1e-9

    def test_length_monotone(self):
        trip = self._zigzag()
        assert meos.length(douglas_peucker_simplify(trip, 0.5)) <= \
            meos.length(trip) + 1e-9
