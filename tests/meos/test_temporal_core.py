"""Core temporal-type machinery: parsing, subtypes, accessors, restriction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import meos
from repro.meos import Interval, MeosError, tstzset, tstzspan, tstzspanset
from repro.meos.temporal import Interp, TInstant, TSequence, TSequenceSet
from repro.meos.temporal.ttypes import TFLOAT, TINT
from repro.meos.timetypes import parse_timestamptz as ts


class TestParsing:
    def test_instant(self):
        t = meos.tint("1@2025-01-01")
        assert isinstance(t, TInstant)
        assert t.value == 1
        assert str(t) == "1@2025-01-01 00:00:00+00"

    def test_discrete_sequence(self):
        t = meos.tint("{1@2025-01-01, 2@2025-01-02}")
        assert isinstance(t, TSequence)
        assert t.interp is Interp.DISCRETE
        assert t.num_instants() == 2

    def test_continuous_sequence_linear_default(self):
        t = meos.tfloat("[1@2025-01-01, 2@2025-01-02)")
        assert t.interp is Interp.LINEAR
        assert not t.upper_inc

    def test_step_for_discrete_base(self):
        t = meos.tint("[1@2025-01-01, 2@2025-01-02]")
        assert t.interp is Interp.STEP

    def test_step_prefix(self):
        t = meos.tfloat("Interp=Step;[1@2025-01-01, 2@2025-01-02]")
        assert t.interp is Interp.STEP
        assert str(t).startswith("Interp=Step;")

    def test_sequence_set(self):
        t = meos.tfloat(
            "{[1@2025-01-01, 2@2025-01-02], [5@2025-01-05, 5@2025-01-06]}"
        )
        assert isinstance(t, TSequenceSet)
        assert t.num_sequences() == 2

    def test_ttext_with_at_in_value(self):
        t = meos.ttext('"user@example.com"@2025-01-01')
        assert t.value == "user@example.com"

    def test_srid_prefix(self):
        t = meos.tgeompoint("SRID=4326;[Point(1 1)@2025-01-01, "
                            "Point(2 2)@2025-01-02]")
        assert t.srid() == 4326
        assert str(t).startswith("SRID=4326;")

    def test_unsorted_instants_rejected(self):
        with pytest.raises(MeosError):
            meos.tint("[2@2025-01-02, 1@2025-01-01]")

    def test_linear_on_discrete_base_rejected(self):
        with pytest.raises(MeosError):
            meos.tint("Interp=Linear;[1@2025-01-01, 2@2025-01-02]")

    def test_empty_rejected(self):
        with pytest.raises(MeosError):
            meos.tint("{}")


class TestNormalization:
    def test_linear_collinear_middle_dropped(self):
        t = meos.tfloat(
            "[1@2025-01-01, 2@2025-01-02, 3@2025-01-03]"
        )
        assert t.num_instants() == 2  # middle point interpolates exactly

    def test_linear_non_collinear_kept(self):
        t = meos.tfloat("[1@2025-01-01, 5@2025-01-02, 3@2025-01-03]")
        assert t.num_instants() == 3

    def test_step_equal_values_merged(self):
        t = meos.tint("[1@2025-01-01, 1@2025-01-02, 2@2025-01-03]")
        assert t.num_instants() == 2

    def test_endpoints_never_dropped(self):
        t = meos.tfloat("[1@2025-01-01, 1@2025-01-02]")
        assert t.num_instants() == 2


class TestAccessors:
    SEQ = meos.tfloat("[1@2025-01-01, 3@2025-01-03]")

    def test_bounds(self):
        assert self.SEQ.start_value() == 1.0
        assert self.SEQ.end_value() == 3.0
        assert self.SEQ.min_value() == 1.0
        assert self.SEQ.max_value() == 3.0

    def test_timestamps(self):
        assert self.SEQ.start_timestamp() == ts("2025-01-01")
        assert self.SEQ.end_timestamp() == ts("2025-01-03")

    def test_value_at_timestamp_interpolates(self):
        assert self.SEQ.value_at_timestamp(ts("2025-01-02")) == 2.0

    def test_value_at_timestamp_outside(self):
        assert self.SEQ.value_at_timestamp(ts("2025-02-01")) is None

    def test_value_at_excluded_bound(self):
        t = meos.tfloat("[1@2025-01-01, 3@2025-01-03)")
        assert t.value_at_timestamp(ts("2025-01-03")) is None

    def test_step_value_at(self):
        t = meos.tint("[1@2025-01-01, 5@2025-01-03]")
        assert t.value_at_timestamp(ts("2025-01-02")) == 1

    def test_instant_n(self):
        assert self.SEQ.instant_n(1).value == 1.0
        with pytest.raises(MeosError):
            self.SEQ.instant_n(5)

    def test_duration_paper_semantics(self):
        t = meos.tint("{1@2025-01-01, 2@2025-01-02, 1@2025-01-03}")
        assert str(t.duration(True)) == "2 days"
        assert str(t.duration(False)) == "00:00:00"

    def test_duration_sequence(self):
        assert str(self.SEQ.duration()) == "2 days"

    def test_duration_seqset_with_gap(self):
        t = meos.tfloat(
            "{[1@2025-01-01, 1@2025-01-02], [1@2025-01-04, 1@2025-01-05]}"
        )
        assert str(t.duration()) == "2 days"
        assert str(t.duration(True)) == "4 days"

    def test_time_of_seqset(self):
        t = meos.tfloat(
            "{[1@2025-01-01, 1@2025-01-02], [1@2025-01-04, 1@2025-01-05]}"
        )
        assert t.time().num_spans() == 2

    def test_bbox_tbox(self):
        box = meos.tfloat("[1@2025-01-01, 3@2025-01-03]").bbox()
        assert box.vspan.contains_value(2.0)
        assert box.tspan.contains_value(ts("2025-01-02"))


class TestRestriction:
    SEQ = meos.tfloat("[0@2025-01-01, 10@2025-01-11]")

    def test_at_time_span(self):
        got = self.SEQ.at_time(tstzspan("[2025-01-03, 2025-01-05]"))
        assert got.start_value() == 2.0
        assert got.end_value() == 4.0

    def test_at_time_outside(self):
        assert self.SEQ.at_time(tstzspan("[2026-01-01, 2026-01-02]")) is None

    def test_at_time_instant(self):
        got = self.SEQ.at_time(ts("2025-01-02"))
        assert isinstance(got, TInstant)
        assert got.value == 1.0

    def test_at_time_spanset(self):
        frame = tstzspanset("{[2025-01-01, 2025-01-02], "
                            "[2025-01-09, 2025-01-11]}")
        got = self.SEQ.at_time(frame)
        assert isinstance(got, TSequenceSet)
        assert got.num_sequences() == 2

    def test_at_time_tstzset(self):
        got = self.SEQ.at_time(tstzset("{2025-01-02, 2025-01-03}"))
        assert got.num_instants() == 2
        assert got.interp is Interp.DISCRETE

    def test_minus_time(self):
        got = self.SEQ.minus_time(tstzspan("[2025-01-03, 2025-01-05]"))
        assert got.time().num_spans() == 2
        assert got.value_at_timestamp(ts("2025-01-04")) is None

    def test_minus_everything(self):
        assert self.SEQ.minus_time(tstzspan("[2024-01-01, 2026-01-01]")) \
            is None

    def test_at_value_linear_crossing(self):
        got = self.SEQ.at_value(5.0)
        assert isinstance(got, TInstant)
        assert got.t == ts("2025-01-06")

    def test_at_value_constant_segment(self):
        t = meos.tfloat("[5@2025-01-01, 5@2025-01-03, 7@2025-01-05]")
        got = t.at_value(5.0)
        assert got.start_timestamp() == ts("2025-01-01")
        assert got.end_timestamp() == ts("2025-01-03")

    def test_at_value_missing(self):
        assert self.SEQ.at_value(42.0) is None

    def test_at_value_step(self):
        t = meos.tint("[1@2025-01-01, 2@2025-01-03, 1@2025-01-05]")
        got = t.at_value(1)
        spans = got.time()
        assert spans.contains_value(ts("2025-01-02"))
        assert not spans.contains_value(ts("2025-01-04"))

    def test_at_values_set(self):
        from repro.meos import intset

        t = meos.tint("{1@2025-01-01, 2@2025-01-02, 3@2025-01-03}")
        got = t.at_values(intset("{1, 3}"))
        assert got.num_instants() == 2

    def test_ever_always_eq(self):
        t = meos.tint("{1@2025-01-01, 2@2025-01-02}")
        assert t.ever_eq(2)
        assert not t.ever_eq(9)
        assert not t.always_eq(1)
        assert meos.tint("{1@2025-01-01, 1@2025-01-02}").always_eq(1)


class TestTransformations:
    def test_shift_time(self):
        t = meos.tfloat("[1@2025-01-01, 2@2025-01-02]")
        got = t.shift_time(Interval.parse("1 day"))
        assert got.start_timestamp() == ts("2025-01-02")

    def test_scale_time(self):
        t = meos.tfloat("[1@2025-01-01, 2@2025-01-03]")
        got = t.scale_time(Interval.parse("1 day"))
        assert got.end_timestamp() - got.start_timestamp() == \
            86_400_000_000

    def test_map_values(self):
        t = meos.tint("{1@2025-01-01, 2@2025-01-02}")
        got = t.map_values(float, TFLOAT)
        assert got.ttype is TFLOAT
        assert got.values() == [1.0, 2.0]

    def test_merge_instants(self):
        a = meos.tint("1@2025-01-01")
        b = meos.tint("2@2025-01-02")
        got = meos.merge([a, b])
        assert got.interp is Interp.DISCRETE
        assert got.num_instants() == 2

    def test_merge_sequences_with_gap(self):
        a = meos.tfloat("[1@2025-01-01, 2@2025-01-02]")
        b = meos.tfloat("[5@2025-01-05, 6@2025-01-06]")
        got = meos.merge([a, b])
        assert isinstance(got, TSequenceSet)

    def test_merge_adjacent_sequences(self):
        a = meos.tfloat("[1@2025-01-01, 2@2025-01-02]")
        b = meos.tfloat("[2@2025-01-02, 3@2025-01-03]")
        got = meos.merge([a, b])
        assert isinstance(got, TSequence)
        assert got.num_instants() == 2  # collinear normalization

    def test_merge_conflicting_values_rejected(self):
        a = meos.tint("1@2025-01-01")
        b = meos.tint("2@2025-01-01")
        with pytest.raises(MeosError):
            meos.merge([a, b])


class TestEqualityAndRoundTrip:
    CASES = [
        "1@2025-01-01 00:00:00+00",
        "{1@2025-01-01 00:00:00+00, 2@2025-01-02 00:00:00+00}",
        "[1@2025-01-01 00:00:00+00, 2@2025-01-02 00:00:00+00)",
        "{[1@2025-01-01 00:00:00+00, 2@2025-01-02 00:00:00+00], "
        "[5@2025-01-05 00:00:00+00, 5@2025-01-06 00:00:00+00]}",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip_tfloat(self, text):
        t = meos.tfloat(text)
        assert meos.tfloat(str(t)) == t

    def test_hashable(self):
        a = meos.tint("1@2025-01-01")
        b = meos.tint("1@2025-01-01")
        assert len({a, b}) == 1


@st.composite
def _float_sequences(draw):
    n = draw(st.integers(2, 6))
    times = sorted(
        draw(
            st.lists(
                st.integers(0, 10**9), min_size=n, max_size=n, unique=True
            )
        )
    )
    values = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=n, max_size=n
        )
    )
    return TSequence(
        TFLOAT,
        [TInstant(TFLOAT, v, t * 1_000_000) for v, t in zip(values, times)],
        True,
        draw(st.booleans()),
        Interp.LINEAR,
    )


class TestProperties:
    @given(_float_sequences())
    @settings(max_examples=100)
    def test_round_trip(self, seq):
        assert meos.tfloat(str(seq)) == seq

    @given(_float_sequences(), st.floats(0.0, 1.0))
    @settings(max_examples=100)
    def test_at_time_preserves_value(self, seq, frac):
        lo = seq.start_timestamp()
        hi = seq.end_timestamp()
        t = lo + int(frac * (hi - lo))
        value = seq.value_at_timestamp(t)
        restricted = seq.at_time(
            tstzspan(f"[{meos.format_timestamptz(lo)}, "
                     f"{meos.format_timestamptz(hi)}]")
        )
        if value is not None:
            got = restricted.value_at_timestamp(t)
            assert got == pytest.approx(value, abs=1e-6)

    @given(_float_sequences())
    @settings(max_examples=100)
    def test_minus_plus_at_cover_time(self, seq):
        span = tstzspan(
            f"[{meos.format_timestamptz(seq.start_timestamp())}, "
            f"{meos.format_timestamptz((seq.start_timestamp() + seq.end_timestamp()) // 2)}]"
        )
        at = seq.at_time(span)
        minus = seq.minus_time(span)
        total = seq.duration().total_usecs()
        at_total = at.duration().total_usecs() if at else 0
        minus_total = minus.duration().total_usecs() if minus else 0
        assert at_total + minus_total == pytest.approx(total, abs=2)
