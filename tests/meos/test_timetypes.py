"""Timestamp / date / interval parsing, formatting, arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.meos.errors import MeosError
from repro.meos.timetypes import (
    Interval,
    USECS_PER_DAY,
    USECS_PER_HOUR,
    USECS_PER_SEC,
    add_interval,
    format_date,
    format_timestamptz,
    interval_from_usecs,
    parse_date,
    parse_timestamptz,
)


class TestTimestamps:
    def test_date_only(self):
        assert parse_timestamptz("2025-01-01") == 55 * 365 * 0 + parse_timestamptz("2025-01-01")
        assert parse_timestamptz("1970-01-01") == 0

    def test_with_time(self):
        assert parse_timestamptz("1970-01-01 01:00:00") == USECS_PER_HOUR

    def test_with_timezone(self):
        utc = parse_timestamptz("2025-01-01 12:00:00+00")
        plus2 = parse_timestamptz("2025-01-01 14:00:00+02")
        assert utc == plus2

    def test_negative_offset(self):
        utc = parse_timestamptz("2025-01-01 12:00:00+00")
        minus5 = parse_timestamptz("2025-01-01 07:00:00-05")
        assert utc == minus5

    def test_fractional_seconds(self):
        t = parse_timestamptz("1970-01-01 00:00:00.5")
        assert t == USECS_PER_SEC // 2

    def test_iso_t_separator(self):
        assert parse_timestamptz("1970-01-02T00:00:00Z") == USECS_PER_DAY

    def test_format(self):
        assert format_timestamptz(0) == "1970-01-01 00:00:00+00"
        t = parse_timestamptz("2025-06-15 08:30:45+00")
        assert format_timestamptz(t) == "2025-06-15 08:30:45+00"

    def test_format_fractional(self):
        assert format_timestamptz(1500000) == "1970-01-01 00:00:01.5+00"

    def test_invalid(self):
        with pytest.raises(MeosError):
            parse_timestamptz("not a date")
        with pytest.raises(MeosError):
            parse_timestamptz("2025-13-01")

    @given(st.integers(min_value=0, max_value=4_000_000_000_000_000))
    @settings(max_examples=150)
    def test_round_trip(self, usecs):
        assert parse_timestamptz(format_timestamptz(usecs)) == usecs


class TestDates:
    def test_epoch(self):
        assert parse_date("1970-01-01") == 0
        assert parse_date("1970-01-02") == 1

    def test_format_round_trip(self):
        assert format_date(parse_date("2025-06-15")) == "2025-06-15"

    def test_invalid(self):
        with pytest.raises(MeosError):
            parse_date("2025/06/15")


class TestIntervalParse:
    def test_single_unit(self):
        assert Interval.parse("1 day") == Interval(days=1)
        assert Interval.parse("2 hours") == Interval(usecs=2 * USECS_PER_HOUR)
        assert Interval.parse("3 months") == Interval(months=3)
        assert Interval.parse("1 year") == Interval(months=12)

    def test_combined(self):
        iv = Interval.parse("1 day 2 hours")
        assert iv.days == 1
        assert iv.usecs == 2 * USECS_PER_HOUR

    def test_hms(self):
        iv = Interval.parse("01:30:00")
        assert iv.usecs == USECS_PER_HOUR + 30 * 60 * USECS_PER_SEC

    def test_fractional(self):
        assert Interval.parse("0.5 days").usecs == USECS_PER_DAY // 2

    def test_invalid(self):
        with pytest.raises(MeosError):
            Interval.parse("")
        with pytest.raises(MeosError):
            Interval.parse("5 lightyears")
        with pytest.raises(MeosError):
            Interval.parse("5")


class TestIntervalFormat:
    def test_days(self):
        assert str(Interval(days=2)) == "2 days"
        assert str(Interval(days=1)) == "1 day"

    def test_time_part(self):
        assert str(Interval(usecs=USECS_PER_HOUR)) == "01:00:00"

    def test_mixed(self):
        assert str(Interval(days=1, usecs=USECS_PER_HOUR)) == "1 day 01:00:00"

    def test_zero(self):
        assert str(Interval()) == "00:00:00"

    def test_years_months(self):
        assert str(Interval(months=14)) == "1 year 2 mons"

    def test_from_usecs_splits_days(self):
        assert str(interval_from_usecs(2 * USECS_PER_DAY)) == "2 days"


class TestIntervalArithmetic:
    def test_add_day(self):
        t = parse_timestamptz("2025-01-31")
        assert format_timestamptz(add_interval(t, Interval.parse("1 day"))) \
            == "2025-02-01 00:00:00+00"

    def test_add_month_clamps(self):
        t = parse_timestamptz("2025-01-31")
        t2 = add_interval(t, Interval.parse("1 month"))
        assert format_timestamptz(t2) == "2025-02-28 00:00:00+00"

    def test_negate(self):
        iv = Interval.parse("1 day")
        assert add_interval(add_interval(0, iv), -iv) == 0

    def test_addition(self):
        total = Interval.parse("1 day") + Interval.parse("2 hours")
        assert total.days == 1
        assert total.usecs == 2 * USECS_PER_HOUR

    def test_total_usecs(self):
        assert Interval.parse("1 day").total_usecs() == USECS_PER_DAY
        assert Interval(months=1).total_usecs() == 30 * USECS_PER_DAY

    def test_bool(self):
        assert Interval.parse("1 second")
        assert not Interval()
