"""Temporal-number arithmetic and statistics (MEOS tnumber ops)."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import meos
from repro.meos import MeosError, MeosTypeError
from repro.meos.temporal import (
    Interp,
    arith_const,
    arith_temporal,
    integral,
    max_instant,
    min_instant,
    tnumber_abs,
    tnumber_round,
    tw_avg,
)
from repro.meos.timetypes import parse_timestamptz as ts

RAMP = meos.tfloat("[0@2025-01-01, 10@2025-01-02]")


class TestArithConst:
    def test_add(self):
        got = arith_const(RAMP, 5.0, operator.add)
        assert got.start_value() == 5.0
        assert got.end_value() == 15.0
        assert got.interp is Interp.LINEAR

    def test_mul(self):
        got = arith_const(RAMP, 2.0, operator.mul)
        assert got.end_value() == 20.0

    def test_reverse_sub(self):
        got = arith_const(RAMP, 10.0, operator.sub, reverse=True)
        assert got.start_value() == 10.0
        assert got.end_value() == 0.0

    def test_div_by_zero(self):
        with pytest.raises(MeosError):
            arith_const(RAMP, 0.0, operator.truediv)

    def test_reverse_div_linear_rejected(self):
        with pytest.raises(MeosError):
            arith_const(RAMP, 1.0, operator.truediv, reverse=True)

    def test_reverse_div_step_ok(self):
        t = meos.tint("[2@2025-01-01, 4@2025-01-02]")
        got = arith_const(t, 8.0, operator.truediv, reverse=True)
        assert got.start_value() == 4.0

    def test_tint_plus_int_stays_tint(self):
        t = meos.tint("{1@2025-01-01, 2@2025-01-02}")
        got = arith_const(t, 1, operator.add)
        assert got.ttype.name == "tint"

    def test_non_number_rejected(self):
        with pytest.raises(MeosTypeError):
            arith_const(meos.tbool("t@2025-01-01"), 1.0, operator.add)


class TestArithTemporal:
    OTHER = meos.tfloat("[10@2025-01-01, 0@2025-01-02]")

    def test_add_is_constant_here(self):
        got = arith_temporal(RAMP, self.OTHER, operator.add)
        assert got.always(lambda v: v == pytest.approx(10.0))

    def test_sub(self):
        got = arith_temporal(RAMP, self.OTHER, operator.sub)
        assert got.start_value() == -10.0
        assert got.end_value() == 10.0

    def test_mul_has_turning_point(self):
        got = arith_temporal(RAMP, self.OTHER, operator.mul)
        # x(10-x) peaks at 25 at the midpoint.
        assert got.max_value() == pytest.approx(25.0)

    def test_disjoint_time_none(self):
        far = meos.tfloat("[1@2026-01-01, 1@2026-01-02]")
        assert arith_temporal(RAMP, far, operator.add) is None

    def test_division_by_crossing_zero(self):
        with pytest.raises(MeosError):
            arith_temporal(RAMP, self.OTHER, operator.truediv)

    def test_division_ok(self):
        denom = meos.tfloat("[2@2025-01-01, 2@2025-01-02]")
        got = arith_temporal(RAMP, denom, operator.truediv)
        assert got.end_value() == pytest.approx(5.0)

    def test_discrete_operands(self):
        a = meos.tint("{1@2025-01-01, 2@2025-01-02}")
        b = meos.tint("{10@2025-01-01, 20@2025-01-02}")
        got = arith_temporal(a, b, operator.add)
        assert got.values() == [11.0, 22.0]


class TestUnary:
    def test_abs_crossing(self):
        t = meos.tfloat("[-10@2025-01-01, 10@2025-01-03]")
        got = tnumber_abs(t)
        assert got.min_value() == 0.0
        assert got.value_at_timestamp(ts("2025-01-02")) == 0.0

    def test_abs_step(self):
        t = meos.tint("[-1@2025-01-01, 2@2025-01-02]")
        assert tnumber_abs(t).values() == [1, 2]

    def test_round(self):
        t = meos.tfloat("[1.234@2025-01-01, 5.678@2025-01-02]")
        got = tnumber_round(t, 1)
        assert got.values() == [1.2, 5.7]


class TestStatistics:
    def test_integral_rectangle(self):
        t = meos.tfloat("[2@2025-01-01 00:00:00, 2@2025-01-01 00:00:10]")
        assert integral(t) == pytest.approx(20.0)

    def test_integral_triangle(self):
        t = meos.tfloat("[0@2025-01-01 00:00:00, 10@2025-01-01 00:00:10]")
        assert integral(t) == pytest.approx(50.0)

    def test_integral_step(self):
        t = meos.tint("[3@2025-01-01 00:00:00, 9@2025-01-01 00:00:10]")
        assert integral(t) == pytest.approx(30.0)  # holds 3 for 10 s

    def test_twavg_linear(self):
        assert tw_avg(RAMP) == pytest.approx(5.0)

    def test_twavg_discrete_falls_back_to_mean(self):
        t = meos.tint("{1@2025-01-01, 3@2025-01-02}")
        assert tw_avg(t) == pytest.approx(2.0)

    def test_twavg_weights_longer_segments(self):
        t = meos.tfloat(
            "[0@2025-01-01 00:00:00, 0@2025-01-01 00:00:30, "
            "10@2025-01-01 00:00:30.000001, 10@2025-01-01 00:00:40]"
        )
        # ~30s at 0, ~10s at 10 -> twavg ~2.5, plain mean would be 5.
        assert tw_avg(t) == pytest.approx(2.5, abs=0.1)

    def test_min_max_instants(self):
        t = meos.tfloat("[5@2025-01-01, 1@2025-01-02, 9@2025-01-03]")
        assert min_instant(t).value == 1.0
        assert max_instant(t).value == 9.0
        assert max_instant(t).t == ts("2025-01-03")

    def test_max_tie_picks_first(self):
        t = meos.tint("{5@2025-01-01, 5@2025-01-02}")
        assert max_instant(t).t == ts("2025-01-01")


class TestProperties:
    values = st.lists(
        st.floats(-100, 100, allow_nan=False), min_size=2, max_size=6
    )

    @given(values, st.floats(-10, 10, allow_nan=False))
    @settings(max_examples=100)
    def test_add_then_sub_identity(self, vals, c):
        instants = ", ".join(
            f"{v}@2025-01-{i + 1:02d}" for i, v in enumerate(vals)
        )
        t = meos.tfloat(f"[{instants}]")
        back = arith_const(arith_const(t, c, operator.add), c,
                           operator.sub)
        for a, b in zip(t.instants(), back.instants()):
            assert b.value == pytest.approx(a.value, abs=1e-9)

    @given(values)
    @settings(max_examples=100)
    def test_twavg_within_bounds(self, vals):
        instants = ", ".join(
            f"{v}@2025-01-{i + 1:02d}" for i, v in enumerate(vals)
        )
        t = meos.tfloat(f"[{instants}]")
        avg = tw_avg(t)
        assert t.min_value() - 1e-9 <= avg <= t.max_value() + 1e-9
