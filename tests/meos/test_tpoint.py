"""Temporal point (tgeompoint) spatial operations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import meos
from repro.geo import LineString, MultiPoint, Point, Polygon, MultiLineString
from repro.meos import MeosError, MeosTypeError, tstzspan
from repro.meos.temporal import Interp
from repro.meos.timetypes import USECS_PER_SEC, parse_timestamptz as ts

TRIP = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
SQUARE = Polygon([(2, -2), (6, -2), (6, 2), (2, 2)])


class TestTrajectory:
    def test_linear_sequence(self):
        traj = meos.trajectory(TRIP)
        assert isinstance(traj, LineString)
        assert traj.points == ((0, 0), (10, 0))

    def test_stationary(self):
        t = meos.tgeompoint("[Point(1 1)@2025-01-01, Point(1 1)@2025-01-02]")
        traj = meos.trajectory(t)
        assert isinstance(traj, Point)

    def test_instant(self):
        t = meos.tgeompoint("Point(3 4)@2025-01-01")
        assert meos.trajectory(t) == Point(3, 4)

    def test_discrete_deduplicates(self):
        t = meos.tgeompoint(
            "{Point(1 1)@2025-01-01, Point(2 2)@2025-01-02, "
            "Point(1 1)@2025-01-03}"
        )
        traj = meos.trajectory(t)
        assert isinstance(traj, MultiPoint)
        assert len(traj) == 2

    def test_seqset_collects(self):
        t = meos.tgeompoint(
            "{[Point(0 0)@2025-01-01, Point(1 0)@2025-01-02], "
            "[Point(5 5)@2025-01-03, Point(6 5)@2025-01-04]}"
        )
        traj = meos.trajectory(t)
        assert isinstance(traj, MultiLineString)

    def test_srid_propagates(self):
        t = meos.tgeompoint("SRID=3857;[Point(0 0)@2025-01-01, "
                            "Point(1 1)@2025-01-02]")
        assert meos.trajectory(t).srid == 3857

    def test_requires_spatial(self):
        with pytest.raises(MeosTypeError):
            meos.trajectory(meos.tint("1@2025-01-01"))


class TestMeasures:
    def test_length(self):
        assert meos.length(TRIP) == 10.0

    def test_length_discrete_zero(self):
        t = meos.tgeompoint("{Point(0 0)@2025-01-01, Point(9 9)@2025-01-02}")
        assert meos.length(t) == 0.0

    def test_cumulative_length(self):
        cl = meos.cumulative_length(TRIP)
        assert cl.start_value() == 0.0
        assert cl.end_value() == 10.0

    def test_speed(self):
        t = meos.tgeompoint(
            "[Point(0 0)@2025-01-01 00:00:00, Point(100 0)@2025-01-01 00:00:10]"
        )
        sp = meos.speed(t)
        assert sp.start_value() == pytest.approx(10.0)  # 100 m / 10 s

    def test_speed_requires_linear(self):
        t = meos.tgeompoint("{Point(0 0)@2025-01-01, Point(1 1)@2025-01-02}")
        with pytest.raises(MeosError):
            meos.speed(t)

    def test_twcentroid(self):
        c = meos.twcentroid(TRIP)
        assert c.x == pytest.approx(5.0)
        assert c.y == 0.0


class TestAtGeometry:
    def test_clips_to_polygon(self):
        got = meos.at_geometry(TRIP, SQUARE)
        assert got is not None
        # Inside x in [2, 6] of a 10-unit, 1-day trip.
        start = got.start_timestamp()
        end = got.end_timestamp()
        frac_start = (start - TRIP.start_timestamp()) / 86_400_000_000
        frac_end = (end - TRIP.start_timestamp()) / 86_400_000_000
        assert frac_start == pytest.approx(0.2, abs=1e-6)
        assert frac_end == pytest.approx(0.6, abs=1e-6)

    def test_outside_returns_none(self):
        far = Polygon([(100, 100), (110, 100), (110, 110), (100, 110)])
        assert meos.at_geometry(TRIP, far) is None

    def test_minus_geometry_complements(self):
        inside = meos.at_geometry(TRIP, SQUARE)
        outside = meos.minus_geometry(TRIP, SQUARE)
        total = TRIP.duration().total_usecs()
        got = inside.duration().total_usecs() + \
            outside.duration().total_usecs()
        assert got == pytest.approx(total, abs=5)

    def test_instant_inside(self):
        t = meos.tgeompoint("Point(3 0)@2025-01-01")
        assert meos.at_geometry(t, SQUARE) is t

    def test_discrete_filtering(self):
        t = meos.tgeompoint(
            "{Point(3 0)@2025-01-01, Point(50 50)@2025-01-02}"
        )
        got = meos.at_geometry(t, SQUARE)
        assert got.num_instants() == 1

    def test_at_stbox(self):
        box = meos.stbox("STBOX X((2,-2),(6,2))")
        got = meos.at_stbox(TRIP, box)
        assert got is not None
        boxed = got.stbox()
        assert boxed.xmin >= 2 - 1e-6
        assert boxed.xmax <= 6 + 1e-6

    def test_at_stbox_with_time(self):
        box = meos.stbox(
            "STBOX XT(((0,-1),(10,1)),[2025-01-01, 2025-01-01 12:00:00])"
        )
        got = meos.at_stbox(TRIP, box)
        assert got.end_timestamp() <= ts("2025-01-01 12:00:00")


class TestRelationships:
    def test_e_intersects(self):
        assert meos.e_intersects(TRIP, SQUARE)
        assert not meos.e_intersects(
            TRIP, Polygon([(0, 5), (1, 5), (1, 6), (0, 6)])
        )

    def test_a_intersects(self):
        inside_square = Polygon([(-1, -1), (11, -1), (11, 1), (-1, 1)])
        assert meos.a_intersects(TRIP, inside_square)
        assert not meos.a_intersects(TRIP, SQUARE)

    def test_t_intersects(self):
        tb = meos.t_intersects(TRIP, SQUARE)
        spans = meos.when_true(tb)
        assert spans is not None
        assert spans.num_spans() == 1

    def test_e_dwithin_crossing_paths(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(10 0)@2025-01-01, Point(0 0)@2025-01-02]")
        assert meos.e_dwithin(a, b, 1.0)

    def test_e_dwithin_parallel_far(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(0 9)@2025-01-01, Point(10 9)@2025-01-02]")
        assert not meos.e_dwithin(a, b, 1.0)
        assert meos.e_dwithin(a, b, 9.0)

    def test_e_dwithin_same_place_different_time(self):
        # Same spatial path, but disjoint periods: never within.
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(0 0)@2025-02-01, Point(10 0)@2025-02-02]")
        assert not meos.e_dwithin(a, b, 1000.0)

    def test_a_dwithin(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(0 1)@2025-01-01, Point(10 1)@2025-01-02]")
        assert meos.a_dwithin(a, b, 1.5)
        assert not meos.a_dwithin(a, b, 0.5)

    def test_t_dwithin_window(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(10 0)@2025-01-01, Point(0 0)@2025-01-02]")
        tb = meos.t_dwithin(a, b, 2.0)
        spans = meos.when_true(tb)
        assert spans.num_spans() == 1
        span = spans.start_span()
        # They cross at noon; the within-2 window is symmetric around it.
        mid = ts("2025-01-01 12:00:00")
        assert span.lower < mid < span.upper

    def test_t_dwithin_never(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(1 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(0 50)@2025-01-01, Point(1 50)@2025-01-02]")
        tb = meos.t_dwithin(a, b, 2.0)
        assert meos.when_true(tb) is None
        assert tb.always(lambda v: v is False)

    def test_temporal_distance(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(0 3)@2025-01-01, Point(10 3)@2025-01-02]")
        d = meos.temporal_distance(a, b)
        assert d.start_value() == pytest.approx(3.0)
        assert d.end_value() == pytest.approx(3.0)

    def test_temporal_distance_has_minimum_instant(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(10 0)@2025-01-01, Point(0 0)@2025-01-02]")
        d = meos.temporal_distance(a, b)
        assert d.min_value() == pytest.approx(0.0, abs=1e-6)

    def test_nearest_approach_distance(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(0 4)@2025-01-01, Point(10 2)@2025-01-02]")
        assert meos.nearest_approach_distance(a, b) == pytest.approx(2.0)

    def test_nad_no_overlap(self):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(1 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(0 0)@2026-01-01, Point(1 0)@2026-01-02]")
        assert meos.nearest_approach_distance(a, b) is None


class TestTransform:
    def test_transform_preserves_structure(self):
        t = meos.tgeompoint(
            "SRID=4326;[Point(105.8 21.0)@2025-01-01, "
            "Point(105.9 21.1)@2025-01-02]"
        )
        out = meos.transform(t, 32648)
        assert out.srid() == 32648
        assert out.num_instants() == t.num_instants()
        assert out.timestamps() == t.timestamps()

    def test_set_srid(self):
        t = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(1 1)@2025-01-02]")
        assert meos.set_srid(t, 4326).srid() == 4326


class TestDwithinProperties:
    @given(
        st.floats(-50, 50), st.floats(-50, 50),
        st.floats(-50, 50), st.floats(-50, 50),
        st.floats(0.5, 30),
    )
    @settings(max_examples=100)
    def test_edwithin_matches_sampling(self, ax, ay, bx, by, dist):
        a = meos.tgeompoint(
            f"[Point({ax} {ay})@2025-01-01, Point({ax + 10} {ay})@2025-01-02]"
        )
        b = meos.tgeompoint(
            f"[Point({bx} {by})@2025-01-01, Point({bx} {by + 10})@2025-01-02]"
        )
        expected = False
        t0 = a.start_timestamp()
        t1 = a.end_timestamp()
        for k in range(101):
            t = t0 + (t1 - t0) * k // 100
            pa = a.value_at_timestamp(t)
            pb = b.value_at_timestamp(t)
            if pa.distance_to(pb) <= dist:
                expected = True
                break
        got = meos.e_dwithin(a, b, dist)
        if expected:
            assert got
        # (sampling may miss a brief crossing, so only one direction is
        # asserted strictly; verify the negative with the exact NAD)
        if not got:
            nad = meos.nearest_approach_distance(a, b)
            assert nad is None or nad > dist - 1e-6

    @given(st.floats(0.5, 20))
    @settings(max_examples=60)
    def test_when_true_window_inside_trip_time(self, dist):
        a = meos.tgeompoint("[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]")
        b = meos.tgeompoint("[Point(10 0)@2025-01-01, Point(0 0)@2025-01-02]")
        spans = meos.when_true(meos.t_dwithin(a, b, dist))
        if spans is not None:
            assert spans.to_span().lower >= a.start_timestamp()
            assert spans.to_span().upper <= a.end_timestamp()
