"""Regression tests for the profiler concurrency hazard.

The original profiler monkey-patched the module-level ``execute_plan`` /
``execute_rows`` functions; two overlapping profiled executions corrupted
each other's statistics (and un-patching mid-flight broke the survivor).
Profiling is now carried by the execution context, so these tests drive
interleaved generators in one thread and parallel queries across threads
and assert complete isolation.
"""

import threading

import pytest

from repro.observability import QueryStatistics, set_collection_enabled
from repro.pgsim import RowDatabase
from repro.pgsim.executor import RowContext
from repro.pgsim.profiler import execute_rows_profiled
from repro.quack import Database
from repro.quack.executor import ExecutionContext
from repro.quack.profiler import PlanProfiler, execute_plan_profiled
from repro.quack.sql import parse_sql


def _quack_plan(con, sql):
    (stmt,) = parse_sql(sql)
    return con._plan_select(stmt)


class TestInterleavedGenerators:
    def test_two_profiled_plans_interleaved(self):
        con = Database().connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute(
            "INSERT INTO t SELECT i FROM generate_series(1, 5000) AS g(i)"
        )
        plan_a = _quack_plan(con, "SELECT a FROM t WHERE a <= 2000")
        plan_b = _quack_plan(con, "SELECT a FROM t WHERE a <= 100")

        prof_a, prof_b = PlanProfiler(), PlanProfiler()
        gen_a = execute_plan_profiled(plan_a, ExecutionContext(), prof_a)
        gen_b = execute_plan_profiled(plan_b, ExecutionContext(), prof_b)

        rows_a = rows_b = 0
        done_a = done_b = False
        # Alternate pulls: both instrumented generators are live at once.
        while not (done_a and done_b):
            if not done_a:
                try:
                    rows_a += next(gen_a).count
                except StopIteration:
                    done_a = True
            if not done_b:
                try:
                    rows_b += next(gen_b).count
                except StopIteration:
                    done_b = True

        assert rows_a == 2000
        assert rows_b == 100
        assert prof_a.stats_for(plan_a).rows == 2000
        assert prof_b.stats_for(plan_b).rows == 100
        # No cross-talk: each profiler only saw its own plan's operators.
        assert id(plan_b) not in prof_a.stats
        assert id(plan_a) not in prof_b.stats

    def test_row_engine_interleaved(self):
        db = RowDatabase()
        con = db.connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute(
            "INSERT INTO t SELECT i FROM generate_series(1, 500) AS g(i)"
        )
        (stmt_a,) = parse_sql("SELECT a FROM t WHERE a <= 200")
        (stmt_b,) = parse_sql("SELECT a FROM t WHERE a <= 10")
        plan_a = con._plan_select(stmt_a)
        plan_b = con._plan_select(stmt_b)

        prof_a, prof_b = PlanProfiler(), PlanProfiler()
        gen_a = execute_rows_profiled(plan_a, RowContext(), prof_a)
        gen_b = execute_rows_profiled(plan_b, RowContext(), prof_b)
        rows_a = list(gen_a)  # fully drain A after starting both
        rows_b = list(gen_b)

        assert len(rows_a) == 200
        assert len(rows_b) == 10
        assert prof_a.stats_for(plan_a).rows == 200
        assert prof_b.stats_for(plan_b).rows == 10

    def test_nested_profiled_execution(self):
        """A profiled run inside another profiled run keeps both sane."""
        con = Database().connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute(
            "INSERT INTO t SELECT i FROM generate_series(1, 100) AS g(i)"
        )
        plan_outer = _quack_plan(con, "SELECT a FROM t")
        plan_inner = _quack_plan(con, "SELECT a FROM t WHERE a < 5")
        prof_outer, prof_inner = PlanProfiler(), PlanProfiler()

        outer_rows = 0
        for chunk in execute_plan_profiled(
            plan_outer, ExecutionContext(), prof_outer
        ):
            outer_rows += chunk.count
            inner_rows = sum(
                c.count
                for c in execute_plan_profiled(
                    plan_inner, ExecutionContext(), prof_inner
                )
            )
            assert inner_rows == 4
        assert outer_rows == 100
        assert prof_outer.stats_for(plan_outer).rows == 100


class TestThreads:
    def test_parallel_profiled_queries_are_isolated(self):
        con = Database().connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute(
            "INSERT INTO t SELECT i FROM generate_series(1, 1000) AS g(i)"
        )
        results = {}
        errors = []

        def worker(limit):
            try:
                for _ in range(10):
                    stats = con.execute(
                        f"SELECT a FROM t WHERE a <= {limit}"
                    ).stats()
                    assert stats.counter("executor.rows_returned") == limit
                results[limit] = True
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in (100, 250, 500, 750)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 4


class TestDifferential:
    @pytest.mark.parametrize("make", [
        lambda: Database().connect(),
        lambda: RowDatabase().connect(),
    ], ids=["quack", "pgsim"])
    def test_profiled_rows_equal_unprofiled(self, make):
        sql = (
            "SELECT a % 7 AS k, count(*) AS n FROM t "
            "GROUP BY a % 7 ORDER BY k"
        )
        con = make()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute(
            "INSERT INTO t SELECT i FROM generate_series(1, 999) AS g(i)"
        )
        profiled = con.execute(sql).rows
        con.explain_analyze(sql)  # instrumented run in between
        previous = set_collection_enabled(False)
        try:
            unprofiled = con.execute(sql).rows
        finally:
            set_collection_enabled(previous)
        assert profiled == unprofiled

    def test_stats_objects_are_per_query(self):
        con = Database().connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3)")
        first = con.execute("SELECT * FROM t").stats()
        second = con.execute("SELECT * FROM t WHERE a = 1").stats()
        assert first is not second
        assert first.counter("executor.rows_returned") == 3
        assert second.counter("executor.rows_returned") == 1
