"""Structured EXPLAIN ANALYZE: JSON schema and pgsim text parity."""

import json

import pytest

from repro import core
from repro.quack import Database
from repro.quack.errors import QuackError


def _check_plan_node(node):
    assert isinstance(node["operator"], str)
    assert node["rows"] >= 0
    assert node["seconds"] >= 0.0
    assert node["invocations"] >= 1
    for child in node["children"]:
        _check_plan_node(child)


class TestQuackExplainJson:
    @pytest.fixture
    def con(self):
        con = Database().connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute(
            "INSERT INTO t SELECT i FROM generate_series(1, 100) AS g(i)"
        )
        return con

    def test_json_schema_round_trip(self, con):
        out = con.explain_analyze(
            "SELECT a FROM t WHERE a < 10 ORDER BY a", format="json"
        )
        round_tripped = json.loads(json.dumps(out))
        assert round_tripped["engine"] == "quack"
        for key in ("plan", "phases", "total_seconds", "counters"):
            assert key in round_tripped
        _check_plan_node(round_tripped["plan"])
        assert round_tripped["counters"]["executor.rows_returned"] == 9

    def test_text_format_has_header_lines(self, con):
        text = con.explain_analyze("SELECT count(*) FROM t")
        assert text.startswith("PHASES ")
        assert "total=" in text
        assert "COUNTERS " in text
        assert "SEQ_SCAN t  (rows=100" in text

    def test_explain_prefix_is_unwrapped(self, con):
        out = con.explain_analyze("EXPLAIN SELECT a FROM t", format="json")
        assert out["plan"]["rows"] == 100

    def test_bad_format_rejected(self, con):
        with pytest.raises(QuackError):
            con.explain_analyze("SELECT 1", format="yaml")

    def test_statement_form_matches_method(self, con):
        via_stmt = con.execute(
            "EXPLAIN ANALYZE SELECT a FROM t LIMIT 3"
        ).plan_text
        via_method = con.explain_analyze("SELECT a FROM t LIMIT 3")
        assert "LIMIT 3  (rows=3" in via_stmt
        assert "LIMIT 3  (rows=3" in via_method


class TestPgsimExplain:
    @pytest.fixture
    def con(self):
        con = core.connect_baseline()
        con.execute("CREATE TABLE r(id INTEGER, box STBOX)")
        con.execute(
            "INSERT INTO r SELECT i, ('STBOX X((' || i || ',' || i ||"
            " '),(' || (i + 1) || ',' || (i + 1) || '))') "
            "FROM generate_series(1, 50) AS t(i)"
        )
        con.execute("CREATE INDEX gx ON r USING GIST(box)")
        return con

    def test_json_schema_matches_quack(self, con):
        out = con.explain_analyze(
            "SELECT count(*) FROM r WHERE box && "
            "stbox('STBOX X((10,10),(20,20))')",
            format="json",
        )
        round_tripped = json.loads(json.dumps(out))
        assert round_tripped["engine"] == "pgsim"
        for key in ("plan", "phases", "total_seconds", "counters"):
            assert key in round_tripped
        _check_plan_node(round_tripped["plan"])
        assert round_tripped["counters"]["index.gist.probes"] == 1

    def test_index_probes_rendered_in_text(self, con):
        # Satellite: the row engine's EXPLAIN ANALYZE shows the same
        # probes=/candidates= annotations as the columnar engine.
        text = con.explain_analyze(
            "SELECT count(*) FROM r WHERE box && "
            "stbox('STBOX X((10,10),(20,20))')"
        )
        assert "GIST_INDEX_SCAN" in text or "INDEX_SCAN" in text
        assert "probes=1" in text
        assert "candidates=" in text
        assert "PHASES " in text

    def test_statement_form_works(self, con):
        text = con.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM r WHERE id < 5"
        ).plan_text
        assert "rows=" in text
        assert "ms)" in text
