"""Unit tests for the metrics registry and the span tracer."""

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QueryStatistics,
    Tracer,
    activate,
    count,
    current_stats,
    gauge_max,
    maybe_span,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter("x")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_gauge_tracks_peak(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.peak == 3.0

    def test_histogram_summary(self):
        h = Histogram("x")
        for v in (0.0005, 0.05, 2.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.0005
        assert summary["max"] == 2.0
        assert h.mean == pytest.approx((0.0005 + 0.05 + 2.0) / 3)
        # Each observation lands in exactly one bucket.
        assert sum(summary["buckets"]) == 3

    def test_histogram_overflow_bucket(self):
        h = Histogram("x")
        h.observe(99.0)  # beyond the largest bound
        assert h.buckets[-1] == 1


class TestRegistry:
    def test_absorb_merges_query_stats(self):
        registry = MetricsRegistry()
        stats = QueryStatistics()
        stats.bump("rtree.searches", 2)
        stats.gauge_max("executor.peak_materialized_rows", 128)
        with stats.tracer.span("execute"):
            pass
        registry.absorb(stats)
        registry.absorb(stats)
        snap = registry.snapshot()
        assert snap["counters"]["queries_total"] == 2
        assert snap["counters"]["rtree.searches"] == 4
        assert snap["gauges"]["executor.peak_materialized_rows"]["peak"] == 128
        assert snap["histograms"]["query_seconds"]["count"] == 2
        assert snap["histograms"]["phase_seconds.execute"]["count"] == 2

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").increment()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestTracer:
    def test_nesting_and_phase_rollup(self):
        tracer = Tracer()
        with tracer.span("execute"):
            with tracer.span("scan"):
                pass
            with tracer.span("scan"):
                pass
        with tracer.span("execute"):
            pass
        assert len(tracer.spans) == 2
        assert [c.name for c in tracer.spans[0].children] == ["scan", "scan"]
        phases = tracer.phase_seconds()
        # Nested spans roll up into their parent, not the phase total.
        assert set(phases) == {"execute"}
        assert tracer.total_seconds() == pytest.approx(sum(phases.values()))

    def test_span_to_dict(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        node = tracer.to_list()[0]
        assert node["name"] == "a"
        assert node["seconds"] >= node["children"][0]["seconds"]


class TestAmbientContext:
    def test_count_is_noop_without_active_stats(self):
        assert current_stats() is None
        count("anything")  # must not raise
        gauge_max("anything", 1.0)

    def test_activate_scopes_stats(self):
        stats = QueryStatistics()
        with activate(stats):
            count("rtree.searches", 3)
            assert current_stats() is stats
        assert current_stats() is None
        assert stats.counter("rtree.searches") == 3

    def test_maybe_span_none_is_noop(self):
        with maybe_span(None, "parse"):
            pass

    def test_phase_sum_equals_total(self):
        stats = QueryStatistics()
        for phase in ("parse", "bind", "optimize", "execute"):
            with maybe_span(stats, phase):
                pass
        phases = stats.phase_seconds()
        assert set(phases) == {"parse", "bind", "optimize", "execute"}
        assert stats.total_seconds() == pytest.approx(sum(phases.values()))
