"""Unit tests for the metrics registry and the span tracer."""

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QueryStatistics,
    Tracer,
    activate,
    count,
    current_stats,
    gauge_max,
    maybe_span,
    serve_metrics,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter("x")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_gauge_tracks_peak(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.peak == 3.0

    def test_histogram_summary(self):
        h = Histogram("x")
        for v in (0.0005, 0.05, 2.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.0005
        assert summary["max"] == 2.0
        assert h.mean == pytest.approx((0.0005 + 0.05 + 2.0) / 3)
        # Each observation lands in exactly one bucket.
        assert sum(summary["buckets"]) == 3

    def test_histogram_overflow_bucket(self):
        h = Histogram("x")
        h.observe(99.0)  # beyond the largest bound
        assert h.buckets[-1] == 1


class TestQuantiles:
    def test_exact_at_known_distribution(self):
        h = Histogram("x")
        # 100 observations spread across two buckets: 50 around 5ms,
        # 50 around 50ms — the median sits at the 1e-2 boundary region.
        for _ in range(50):
            h.observe(0.005)
        for _ in range(50):
            h.observe(0.05)
        q = h.quantiles()
        assert set(q) == {"p50", "p95", "p99"}
        assert 0.001 <= q["p50"] <= 0.01
        assert 0.01 < q["p95"] <= 0.05
        assert q["p50"] <= q["p95"] <= q["p99"] <= h.max

    def test_never_leaves_observed_range(self):
        h = Histogram("x")
        h.observe(0.0333)  # single observation
        for key, value in h.quantiles().items():
            assert value == pytest.approx(0.0333), key

    def test_empty_histogram(self):
        assert Histogram("x").quantiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    @pytest.mark.parametrize(
        "observation", [0.0333, -0.5, 5e-5, 0.0, 100.0]
    )
    def test_single_observation_is_exact(self, observation):
        """One observation: every quantile IS that observation — finite,
        no NaN/inf from bucket interpolation, even below bucket zero."""
        import math

        h = Histogram("x")
        h.observe(observation)
        q = h.quantiles()
        assert set(q) == {"p50", "p95", "p99"}
        for key, value in q.items():
            assert math.isfinite(value), key
            assert value == pytest.approx(observation), key

    def test_repeated_identical_observations(self):
        h = Histogram("x")
        for _ in range(7):
            h.observe(0.5)
        for key, value in h.quantiles().items():
            assert value == pytest.approx(0.5), key

    def test_summary_carries_quantiles(self):
        h = Histogram("x")
        h.observe(0.002)
        summary = h.summary()
        assert {"p50", "p95", "p99"} <= set(summary)


class TestExposition:
    @staticmethod
    def _populated():
        registry = MetricsRegistry()
        stats = QueryStatistics()
        stats.bump("rtree.searches", 3)
        stats.gauge_max("parallel.workers", 4)
        with stats.tracer.span("execute"):
            pass
        registry.absorb(stats)
        return registry

    def test_prometheus_text_shape(self):
        text = self._populated().expose_text()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_rtree_searches_total 3" in text
        assert "repro_parallel_workers 4" in text
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_query_seconds_count 1" in text
        assert 'repro_query_seconds_quantile{quantile="0.99"}' in text

    def test_parses_as_exposition_format(self):
        """Every line is a comment or `name[{labels}] value`, histogram
        buckets are cumulative, and _count matches the +Inf bucket."""
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
            r'(\{[a-zA-Z_]+="[^"]*"\})?'   # optional single label
            r" (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"
        )
        buckets = {}
        counts = {}
        for line in self._populated().expose_text().splitlines():
            if line.startswith("# TYPE "):
                parts = line.split()
                assert len(parts) == 4
                assert parts[3] in ("counter", "gauge", "histogram")
                continue
            assert sample.match(line), f"unparseable line: {line!r}"
            name = line.split("{")[0].split(" ")[0]
            value = float(line.rsplit(" ", 1)[1].replace("+Inf", "inf"))
            if "_bucket{" in line:
                seen = buckets.setdefault(name, [])
                if seen:
                    assert value >= seen[-1], "buckets must be cumulative"
                seen.append(value)
            elif name.endswith("_count"):
                counts[name[: -len("_count")]] = value
        for name, series in buckets.items():
            family = name[: -len("_bucket")]
            assert series[-1] == counts[family]

    def test_serve_metrics_http_roundtrip(self):
        from urllib.request import urlopen

        registry = self._populated()
        server = serve_metrics(port=0, registry=registry)
        try:
            with urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = response.read().decode("utf-8")
            assert body == registry.expose_text()
            with urlopen(f"http://127.0.0.1:{server.port}/",
                         timeout=5) as response:
                assert response.status == 200
        finally:
            server.shutdown()

    def test_unknown_path_is_404(self):
        from urllib.error import HTTPError
        from urllib.request import urlopen

        server = serve_metrics(port=0, registry=MetricsRegistry())
        try:
            with pytest.raises(HTTPError) as excinfo:
                urlopen(f"http://127.0.0.1:{server.port}/nope", timeout=5)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()


class TestRegistry:
    def test_absorb_merges_query_stats(self):
        registry = MetricsRegistry()
        stats = QueryStatistics()
        stats.bump("rtree.searches", 2)
        stats.gauge_max("executor.peak_materialized_rows", 128)
        with stats.tracer.span("execute"):
            pass
        registry.absorb(stats)
        registry.absorb(stats)
        snap = registry.snapshot()
        assert snap["counters"]["queries_total"] == 2
        assert snap["counters"]["rtree.searches"] == 4
        assert snap["gauges"]["executor.peak_materialized_rows"]["peak"] == 128
        assert snap["histograms"]["query_seconds"]["count"] == 2
        assert snap["histograms"]["phase_seconds.execute"]["count"] == 2

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").increment()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestTracer:
    def test_nesting_and_phase_rollup(self):
        tracer = Tracer()
        with tracer.span("execute"):
            with tracer.span("scan"):
                pass
            with tracer.span("scan"):
                pass
        with tracer.span("execute"):
            pass
        assert len(tracer.spans) == 2
        assert [c.name for c in tracer.spans[0].children] == ["scan", "scan"]
        phases = tracer.phase_seconds()
        # Nested spans roll up into their parent, not the phase total.
        assert set(phases) == {"execute"}
        assert tracer.total_seconds() == pytest.approx(sum(phases.values()))

    def test_span_to_dict(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        node = tracer.to_list()[0]
        assert node["name"] == "a"
        assert node["seconds"] >= node["children"][0]["seconds"]


class TestAmbientContext:
    def test_count_is_noop_without_active_stats(self):
        assert current_stats() is None
        count("anything")  # must not raise
        gauge_max("anything", 1.0)

    def test_activate_scopes_stats(self):
        stats = QueryStatistics()
        with activate(stats):
            count("rtree.searches", 3)
            assert current_stats() is stats
        assert current_stats() is None
        assert stats.counter("rtree.searches") == 3

    def test_maybe_span_none_is_noop(self):
        with maybe_span(None, "parse"):
            pass

    def test_phase_sum_equals_total(self):
        stats = QueryStatistics()
        for phase in ("parse", "bind", "optimize", "execute"):
            with maybe_span(stats, phase):
                pass
        phases = stats.phase_seconds()
        assert set(phases) == {"parse", "bind", "optimize", "execute"}
        assert stats.total_seconds() == pytest.approx(sum(phases.values()))
