"""End-to-end query statistics on both engines.

Every ``execute`` captures a :class:`QueryStatistics` reachable via
``Result.stats()`` / ``Connection.last_query_stats``; these tests assert
the counters the hot subsystems report — index probes, optimizer rule
fires, kernel dispatches, TOAST detoasting — and the phase trace.
"""

import pytest

from repro import core
from repro.observability import set_collection_enabled
from repro.quack import Database


@pytest.fixture
def con():
    con = Database().connect()
    con.execute("CREATE TABLE t(a INTEGER, b VARCHAR)")
    con.execute(
        "INSERT INTO t SELECT i, 'r' || i FROM "
        "generate_series(1, 1000) AS g(i)"
    )
    return con


@pytest.fixture
def spatial_con():
    con = core.connect()
    con.execute("CREATE TABLE g(box STBOX)")
    con.execute("CREATE INDEX rt ON g USING TRTREE(box)")
    con.execute(
        "INSERT INTO g SELECT ('STBOX X((' || i || ',' || i || '),("
        " ' || (i + 1) || ',' || (i + 1) || '))') "
        "FROM generate_series(1, 100) AS t(i)"
    )
    return con


class TestQuackStats:
    def test_result_carries_stats(self, con):
        result = con.execute("SELECT count(*) FROM t")
        stats = result.stats()
        assert stats is not None
        assert stats is con.last_query_stats
        assert stats.counter("executor.rows_returned") == 1

    def test_phases_recorded_and_sum_to_total(self, con):
        stats = con.execute("SELECT a FROM t WHERE a < 10").stats()
        phases = stats.phase_seconds()
        for name in ("parse", "bind", "optimize", "execute"):
            assert name in phases, f"missing phase {name}"
            assert phases[name] >= 0.0
        assert stats.total_seconds() == pytest.approx(
            sum(phases.values())
        )

    def test_optimizer_rule_fires(self, con):
        con.execute("CREATE TABLE s(a INTEGER)")
        con.execute("INSERT INTO s VALUES (1), (2)")
        stats = con.execute(
            "SELECT * FROM t, s WHERE t.a = s.a AND t.a < 10"
        ).stats()
        # `t.a < 10` touches one leaf; `t.a = s.a` becomes a hash key.
        assert stats.counter("optimizer.rule.filter_pushdown") >= 1
        assert stats.counter("optimizer.rule.hash_join_extraction") >= 1

    def test_kernel_counters(self, con):
        stats = con.execute(
            "SELECT b, sum(a) FROM t GROUP BY b ORDER BY b"
        ).stats()
        assert stats.counter("quack.kernel_ops") >= 1

    def test_trtree_probe_counters(self, spatial_con):
        stats = spatial_con.execute(
            "SELECT count(*) FROM g WHERE box && "
            "stbox('STBOX X((10,10),(20,20))')"
        ).stats()
        assert stats.counter("index.trtree.probes") == 1
        assert stats.counter("index.trtree.candidates") >= 1
        assert stats.counter("rtree.searches") == 1
        assert stats.counter("rtree.nodes_visited") >= 1
        assert stats.counter("rtree.leaf_hits") >= 1
        assert stats.counter("executor.index_scans") == 1

    def test_collection_kill_switch(self, con):
        previous = set_collection_enabled(False)
        try:
            result = con.execute("SELECT count(*) FROM t")
            assert result.stats() is None
            assert result.scalar() == 1000
        finally:
            set_collection_enabled(previous)

    def test_stats_to_dict_is_json_shaped(self, con):
        import json

        snapshot = con.execute("SELECT a FROM t LIMIT 3").stats().to_dict()
        round_tripped = json.loads(json.dumps(snapshot))
        assert set(round_tripped) == {
            "phases", "total_seconds", "counters", "gauges", "spans",
        }


class TestPgsimStats:
    @pytest.fixture
    def row_con(self):
        con = core.connect_baseline()
        con.execute("CREATE TABLE r(id INTEGER, box STBOX)")
        con.execute(
            "INSERT INTO r SELECT i, ('STBOX X((' || i || ',' || i ||"
            " '),(' || (i + 1) || ',' || (i + 1) || '))') "
            "FROM generate_series(1, 50) AS t(i)"
        )
        return con

    def test_result_carries_stats(self, row_con):
        result = row_con.execute("SELECT count(*) FROM r")
        stats = result.stats()
        assert stats is not None
        assert stats is row_con.last_query_stats
        assert stats.counter("executor.rows_returned") == 1

    def test_gist_probe_counters(self, row_con):
        row_con.execute("CREATE INDEX gx ON r USING GIST(box)")
        stats = row_con.execute(
            "SELECT count(*) FROM r WHERE box && "
            "stbox('STBOX X((10,10),(20,20))')"
        ).stats()
        assert stats.counter("index.gist.probes") == 1
        assert stats.counter("index.gist.candidates") >= 1
        assert stats.counter("executor.index_scans") == 1

    def test_btree_probe_counters(self, row_con):
        row_con.execute("CREATE INDEX bx ON r USING BTREE(id)")
        stats = row_con.execute(
            "SELECT count(*) FROM r WHERE id = 7"
        ).stats()
        assert stats.counter("index.btree.probes") == 1
        assert stats.counter("index.btree.candidates") == 1

    def test_detoast_counter(self, row_con):
        stats = row_con.execute(
            "SELECT count(*) FROM r WHERE box && "
            "stbox('STBOX X((0,0),(100,100))')"
        ).stats()
        # Every row's varlena box is deserialized by the residual filter.
        assert stats.counter("pgsim.detoast") >= 50

    def test_phases_recorded(self, row_con):
        stats = row_con.execute("SELECT id FROM r WHERE id < 5").stats()
        phases = stats.phase_seconds()
        for name in ("parse", "bind", "optimize", "execute"):
            assert name in phases
        assert stats.total_seconds() == pytest.approx(
            sum(phases.values())
        )
