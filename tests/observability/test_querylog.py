"""The per-connection rolling query log and its slow-query threshold."""

import json

import pytest

from repro import core
from repro.observability import QueryLog, QueryRecord, set_collection_enabled
from repro.observability.querylog import TOP_COUNTERS
from repro.quack import Database
from repro.quack.database import QuackError


def rec(sql="SELECT 1", seconds=0.01, **kwargs):
    return QueryRecord(sql=sql, seconds=seconds, **kwargs)


class TestQueryLogUnit:
    def test_fifo_eviction_at_capacity(self):
        log = QueryLog(capacity=3, min_duration_ms=0)
        for i in range(5):
            assert log.record(rec(sql=f"SELECT {i}"))
        assert len(log) == 3
        assert [r.sql for r in log.records()] == [
            "SELECT 2", "SELECT 3", "SELECT 4",
        ]
        # lifetime totals survive eviction
        assert log.recorded == 5
        assert log.suppressed == 0

    def test_threshold_suppresses_fast_queries(self):
        log = QueryLog(min_duration_ms=100)
        assert not log.record(rec(seconds=0.05))
        assert log.record(rec(seconds=0.25))
        assert len(log) == 1
        assert log.suppressed == 1

    def test_errors_always_logged(self):
        log = QueryLog(min_duration_ms=-1)  # negative disables logging
        assert not log.record(rec(seconds=10.0))
        assert log.record(rec(seconds=0.001, error="BinderError: nope"))
        assert [r.error for r in log.records()] == ["BinderError: nope"]

    def test_env_default_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_MIN_DURATION", "250")
        assert QueryLog().min_duration_ms == 250.0
        monkeypatch.setenv("REPRO_LOG_MIN_DURATION", "not-a-number")
        assert QueryLog().min_duration_ms == 0.0

    def test_counters_truncated_to_top(self):
        counters = {f"c{i:02d}": i for i in range(20)}
        log = QueryLog()
        log.record(rec(counters=counters))
        kept = log.records()[0].counters
        assert len(kept) == TOP_COUNTERS
        assert min(kept.values()) > max(
            v for k, v in counters.items() if k not in kept
        )

    def test_records_n_returns_most_recent(self):
        log = QueryLog()
        for i in range(4):
            log.record(rec(sql=f"SELECT {i}"))
        assert [r.sql for r in log.records(2)] == ["SELECT 2", "SELECT 3"]

    def test_render_text_and_json(self):
        log = QueryLog()
        log.record(rec(sql="SELECT  *   FROM t", seconds=0.002, rows=7,
                       engine="quack", workers=4,
                       phases={"execute": 0.001}))
        log.record(rec(sql="SELECT broken", seconds=0.001,
                       engine="quack", error="BinderError: no column"))
        text = log.format_text()
        lines = text.splitlines()
        assert len(lines) == 2
        assert "SELECT * FROM t" in lines[0]  # whitespace collapsed
        assert "7 rows" in lines[0]
        assert "workers=4" in lines[0]
        assert "execute=1.00ms" in lines[0]
        assert "ERROR: BinderError: no column" in lines[1]
        parsed = json.loads(log.to_json())
        assert [p["sql"] for p in parsed] == [
            "SELECT  *   FROM t", "SELECT broken",
        ]
        assert parsed[1]["error"] == "BinderError: no column"
        assert "error" not in parsed[0]


@pytest.fixture
def con():
    con = Database().connect()
    con.execute("CREATE TABLE t(a INTEGER)")
    con.execute("INSERT INTO t VALUES (1), (2), (3)")
    return con


class TestQuackIntegration:
    def test_queries_land_in_log(self, con):
        con.execute("SELECT * FROM t")
        records = con.query_log()
        assert [r.sql for r in records][-1] == "SELECT * FROM t"
        last = records[-1]
        assert last.engine == "quack"
        assert last.rows == 3
        assert last.error is None
        assert set(last.phases) >= {"parse", "bind", "execute"}
        assert last.counters  # headline counters retained

    def test_set_log_min_duration_filters(self, con):
        con.execute("SET log_min_duration = 10000")
        before = len(con.query_log())
        con.execute("SELECT * FROM t")  # far under 10s: suppressed
        assert len(con.query_log()) == before
        con.execute("SET log_min_duration = 0")
        con.execute("SELECT * FROM t")
        assert len(con.query_log()) > before

    def test_failed_query_logged_despite_threshold(self, con):
        con.execute("SET log_min_duration = 10000")
        with pytest.raises(Exception):
            con.execute("SELECT nope FROM t")
        last = con.query_log()[-1]
        assert last.sql == "SELECT nope FROM t"
        assert last.error is not None and "nope" in last.error
        assert last.rows is None

    def test_show_log_min_duration(self, con):
        con.execute("SET log_min_duration = 42")
        assert con.execute("SHOW log_min_duration").scalar() == 42.0

    def test_text_and_json_formats(self, con):
        con.execute("SELECT * FROM t")
        assert "SELECT * FROM t" in con.query_log(format="text")
        parsed = json.loads(con.query_log(n=1, format="json"))
        assert len(parsed) == 1 and parsed[0]["engine"] == "quack"
        with pytest.raises(QuackError, match="format"):
            con.query_log(format="xml")

    def test_collection_off_logs_nothing(self, con):
        before = len(con.query_log())
        previous = set_collection_enabled(False)
        try:
            con.execute("SELECT * FROM t")
        finally:
            set_collection_enabled(previous)
        assert len(con.query_log()) == before


class TestPgsimIntegration:
    @pytest.fixture
    def row_con(self):
        con = core.connect_baseline()
        con.execute("CREATE TABLE r(id INTEGER)")
        con.execute("INSERT INTO r VALUES (1), (2)")
        return con

    def test_queries_land_in_log(self, row_con):
        row_con.execute("SELECT * FROM r")
        last = row_con.query_log()[-1]
        assert last.sql == "SELECT * FROM r"
        assert last.engine == "pgsim"
        assert last.workers == 1
        assert last.rows == 2

    def test_set_and_show_log_min_duration(self, row_con):
        row_con.execute("SET log_min_duration = 5000")
        assert row_con.execute("SHOW log_min_duration").scalar() == 5000.0
        before = len(row_con.query_log())
        row_con.execute("SELECT * FROM r")
        assert len(row_con.query_log()) == before  # suppressed

    def test_threads_setting_rejected(self, row_con):
        # no morsel pool on the row engine
        with pytest.raises(Exception, match="unknown setting"):
            row_con.execute("SET threads = 4")
