"""Execution-timeline tracing: collector, Chrome export, engine wiring.

The acceptance bar from the issue: a 4-worker run exports valid Chrome
trace-event JSON whose morsel/fragment events land on at least two
distinct worker lanes, every ``B`` has a matching ``E`` on its lane, and
per-morsel row counts sum to the serial source counts.
"""

import json
import threading
import time

import pytest

from repro import core
from repro.observability import (
    QueryStatistics,
    TraceCollector,
    chrome_trace,
    set_collection_enabled,
)
from repro.quack import Database
from repro.quack.database import QuackError

# ---------------------------------------------------------------------------
# Trace-shape helpers
# ---------------------------------------------------------------------------


def lane_names(trace):
    """Lane display names from the thread_name metadata events."""
    return {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }


def worker_lanes(trace):
    return {l for l in lane_names(trace) if l.startswith("quack-morsel")}


def begin_events(trace, category=None):
    return [
        e for e in trace["traceEvents"]
        if e["ph"] == "B" and (category is None or e["cat"] == category)
    ]


def assert_well_formed(trace):
    """Per lane: every B is closed by an E, E never precedes its B, and
    a child opens no earlier than its parent (proper nesting)."""
    assert json.loads(json.dumps(trace)) == trace  # JSON-serializable
    by_tid = {}
    for e in trace["traceEvents"]:
        if e["ph"] in ("B", "E"):
            by_tid.setdefault(e["tid"], []).append(e)
    assert by_tid, "trace has no interval events"
    for tid, events in by_tid.items():
        stack = []
        for e in events:
            assert e["ts"] >= 0.0
            if e["ph"] == "B":
                if stack:
                    assert e["ts"] >= stack[-1], (
                        f"tid {tid}: child opens before its parent"
                    )
                stack.append(e["ts"])
            else:
                assert stack, f"tid {tid}: E without an open B"
                assert e["ts"] >= stack.pop()
        assert not stack, f"tid {tid}: {len(stack)} unclosed B events"


# ---------------------------------------------------------------------------
# Collector + export units
# ---------------------------------------------------------------------------


class TestTraceCollector:
    def test_emit_tags_calling_thread(self):
        collector = TraceCollector()
        t = time.perf_counter()
        collector.emit("work", "morsel", t, 0.001, rows=10)

        def from_worker():
            collector.emit("work", "morsel", t + 0.002, 0.001, rows=5)

        worker = threading.Thread(target=from_worker, name="lane-x")
        worker.start()
        worker.join()
        assert len(collector) == 2
        assert collector.events[0].lane == collector.home_lane
        assert collector.events[1].lane == "lane-x"
        # home lane sorts first
        assert collector.lanes() == [collector.home_lane, "lane-x"]

    def test_export_pairs_and_relative_timestamps(self):
        stats = QueryStatistics()
        stats.trace = TraceCollector()
        base = time.perf_counter()
        with stats.tracer.span("execute"):
            pass
        # nested pair on one lane: outer enclosing inner
        stats.trace.emit("outer", "operator", base, 0.010)
        stats.trace.emit("inner", "morsel", base + 0.002, 0.003, rows=7)
        trace = chrome_trace(stats, meta={"engine": "unit"})
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"] == {"engine": "unit"}
        assert_well_formed(trace)
        begins = begin_events(trace)
        assert {e["name"] for e in begins} >= {"execute", "outer", "inner"}
        # earliest interval anchors the clock
        assert min(e["ts"] for e in begins) == 0.0
        inner = next(e for e in begins if e["name"] == "inner")
        assert inner["args"]["rows"] == 7
        outer = next(e for e in begins if e["name"] == "outer")
        # inner opens after outer on the same flame track
        assert inner["tid"] == outer["tid"]
        assert inner["ts"] > outer["ts"]

    def test_empty_stats_exports_empty_trace(self):
        trace = chrome_trace(QueryStatistics())
        assert trace["traceEvents"] == []


# ---------------------------------------------------------------------------
# Engine integration (quack)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def parallel_con():
    """4 workers over enough rows that blocking sinks fan out (>=4096)."""
    con = Database().connect(workers=4)
    con.execute("CREATE TABLE big(g INTEGER, v INTEGER)")
    con.execute(
        "INSERT INTO big SELECT i % 13, i FROM "
        "generate_series(1, 5000) AS t(i)"
    )
    return con


N_BIG = 5000
AGG_SQL = "SELECT g, sum(v) FROM big GROUP BY g ORDER BY g"


class TestQuackTrace:
    def test_result_trace_has_phases(self):
        con = Database().connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        trace = con.execute("SELECT * FROM t").trace()
        assert_well_formed(trace)
        phases = {e["name"] for e in begin_events(trace, "phase")}
        assert {"parse", "bind", "optimize", "execute"} <= phases

    def test_parallel_trace_spans_multiple_worker_lanes(self, parallel_con):
        # The aggregate sink bursts 4 morsels onto a pre-started pool;
        # a couple of attempts absorb scheduler nondeterminism.
        lanes = set()
        for _ in range(5):
            trace = parallel_con.execute(AGG_SQL).trace()
            assert_well_formed(trace)
            lanes = worker_lanes(trace)
            if len(lanes) >= 2:
                break
        assert len(lanes) >= 2, f"morsels never spread: lanes={lanes}"

    def test_morsel_rows_sum_to_source_count(self, parallel_con):
        trace = parallel_con.execute(AGG_SQL).trace()
        morsels = [
            e for e in begin_events(trace, "morsel")
            if e["name"] == "aggregate_morsel"
        ]
        assert len(morsels) >= 2
        assert sum(e["args"]["rows"] for e in morsels) == N_BIG

    def test_explain_analyze_trace_carries_plan(self, parallel_con):
        trace = parallel_con.explain_analyze(AGG_SQL, format="trace")
        assert_well_formed(trace)
        assert trace["otherData"]["engine"] == "quack"
        assert "HASH_GROUP_BY" in trace["otherData"]["plan"]
        # under the profiler, operator lifetimes appear on the home lane
        assert begin_events(trace, "operator")

    def test_export_trace_writes_perfetto_loadable_json(
            self, parallel_con, tmp_path):
        parallel_con.execute(AGG_SQL)
        path = tmp_path / "q.trace.json"
        returned = parallel_con.export_trace(str(path))
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == returned
        assert on_disk["otherData"]["engine"] == "quack"
        assert_well_formed(on_disk)

    def test_export_trace_without_query_raises(self):
        con = Database().connect()
        with pytest.raises(QuackError, match="no traced query"):
            con.export_trace("/tmp/never-written.json")

    def test_collection_off_disables_tracing(self, parallel_con):
        from repro.observability import REGISTRY

        before = REGISTRY.snapshot()["counters"].get("queries_total", 0)
        log_before = len(parallel_con.query_log())
        previous = set_collection_enabled(False)
        try:
            result = parallel_con.execute(AGG_SQL)
            assert result.trace() is None
            assert result.stats() is None
        finally:
            set_collection_enabled(previous)
        # nothing downstream ran either: no log record, no absorb
        assert len(parallel_con.query_log()) == log_before
        after = REGISTRY.snapshot()["counters"].get("queries_total", 0)
        assert after == before

    def test_collection_off_overhead_pin(self, parallel_con):
        """With the kill switch off, the tracing/logging layer must not
        slow execution down: best-of-N disabled runtime stays within
        noise of (here: 1.5x, usually well under) the enabled one."""

        def best_of(n=7):
            best = float("inf")
            for _ in range(n):
                start = time.perf_counter()
                parallel_con.execute(AGG_SQL)
                best = min(best, time.perf_counter() - start)
            return best

        best_of(2)  # warm caches and the pool on both paths
        enabled = best_of()
        previous = set_collection_enabled(False)
        try:
            disabled = best_of()
        finally:
            set_collection_enabled(previous)
        assert disabled <= enabled * 1.5, (
            f"collection-off run slower than collection-on: "
            f"{disabled * 1000:.2f}ms vs {enabled * 1000:.2f}ms"
        )


class TestBerlinmodQ4Trace:
    """The issue's acceptance run: BerlinMOD Q4, 4 workers, SF 0.01."""

    @pytest.fixture(scope="class")
    def q4_setup(self):
        from repro.berlinmod.generator import generate
        from repro.berlinmod.queries import get_query
        from repro.berlinmod.runner import prepare_scenario

        con = prepare_scenario("mobilityduck", generate(0.01, seed=4711))
        con.execute("SET threads = 4")
        return con, get_query(4).sql

    def test_q4_trace_valid_with_multiple_worker_lanes(self, q4_setup):
        con, sql = q4_setup
        lanes = set()
        for _ in range(4):
            trace = con.explain_analyze(sql, format="trace")
            assert_well_formed(trace)
            assert trace["otherData"]["engine"] == "quack"
            assert begin_events(trace, "fragment"), (
                "Q4's predicate chain should scatter as fragments"
            )
            lanes = worker_lanes(trace)
            if len(lanes) >= 2:
                break
        assert len(lanes) >= 2, f"Q4 morsels never spread: lanes={lanes}"


# ---------------------------------------------------------------------------
# Engine integration (pgsim)
# ---------------------------------------------------------------------------


class TestPgsimTrace:
    @pytest.fixture
    def row_con(self):
        con = core.connect_baseline()
        con.execute("CREATE TABLE r(id INTEGER)")
        con.execute(
            "INSERT INTO r SELECT i FROM generate_series(1, 100) AS t(i)"
        )
        return con

    def test_explain_analyze_trace_single_lane(self, row_con):
        trace = row_con.explain_analyze(
            "SELECT count(*) FROM r WHERE id < 50", format="trace"
        )
        assert_well_formed(trace)
        assert trace["otherData"]["engine"] == "pgsim"
        # the row engine is single-threaded: exactly one lane
        assert len(lane_names(trace)) == 1
        assert begin_events(trace, "operator")

    def test_export_trace(self, row_con, tmp_path):
        row_con.execute("SELECT * FROM r")
        path = tmp_path / "row.trace.json"
        out = row_con.export_trace(str(path))
        assert out["otherData"]["engine"] == "pgsim"
        assert json.loads(path.read_text(encoding="utf-8")) == out
