"""Row-store baseline engine tests: volcano execution, varlena, indexes."""

import pytest

from repro import core
from repro.pgsim import RowDatabase
from repro.pgsim.table import Varlena, detoast, toast


@pytest.fixture
def con():
    db = RowDatabase()
    con = db.connect()
    con.execute("CREATE TABLE t(a INTEGER, b VARCHAR)")
    con.execute(
        "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')"
    )
    return con


class TestBasics:
    def test_select(self, con):
        rows = con.execute("SELECT a, b FROM t WHERE a >= 2 ORDER BY a")
        assert rows.fetchall() == [(2, "two"), (3, "three")]

    def test_aggregates(self, con):
        assert con.execute("SELECT count(*), sum(a) FROM t") \
            .fetchone() == (3, 6)

    def test_group_by(self, con):
        rows = con.execute(
            "SELECT a % 2, count(*) FROM t GROUP BY a % 2 ORDER BY 1"
        ).fetchall()
        assert rows == [(0, 1), (1, 2)]

    def test_cte(self, con):
        assert con.execute(
            "WITH c AS (SELECT a * 10 AS x FROM t) SELECT sum(x) FROM c"
        ).scalar() == 60

    def test_subquery(self, con):
        assert con.execute(
            "SELECT a FROM t WHERE a = (SELECT max(a) FROM t)"
        ).scalar() == 3

    def test_update_delete(self, con):
        con.execute("UPDATE t SET b = 'ONE' WHERE a = 1")
        assert con.execute("SELECT b FROM t WHERE a = 1").scalar() == "ONE"
        con.execute("DELETE FROM t WHERE a > 1")
        assert con.execute("SELECT count(*) FROM t").scalar() == 1

    def test_left_join(self, con):
        con.execute("CREATE TABLE s(a INTEGER, z VARCHAR)")
        con.execute("INSERT INTO s VALUES (1, 'x')")
        rows = con.execute(
            "SELECT t.a, s.z FROM t LEFT JOIN s ON t.a = s.a ORDER BY t.a"
        ).fetchall()
        assert rows == [(1, "x"), (2, None), (3, None)]


class TestVarlena:
    def test_heavy_values_toasted(self):
        from repro.meos import tstzspan

        value = tstzspan("[2025-01-01, 2025-01-02]")
        wrapped = toast(value)
        assert isinstance(wrapped, Varlena)
        assert detoast(wrapped) == value

    def test_scalars_stay_inline(self):
        assert toast(5) == 5
        assert toast("abc") == "abc"
        assert toast(None) is None

    def test_temporal_round_trip_through_heap(self):
        con = core.connect_baseline()
        con.execute("CREATE TABLE trips(trip TGEOMPOINT)")
        con.execute(
            "INSERT INTO trips VALUES "
            "('[Point(0 0)@2025-01-01, Point(3 4)@2025-01-02]')"
        )
        # The stored datum is toasted...
        table = con.database.catalog.get_table("trips")
        assert isinstance(table.rows[0][0], Varlena)
        # ...and queries see the original value.
        assert con.execute("SELECT length(trip) FROM trips").scalar() == 5.0

    def test_geometry_pickle_round_trip(self):
        from repro.geo import parse_wkt

        geom = parse_wkt("SRID=4326;POLYGON((0 0, 1 0, 1 1, 0 0))")
        assert detoast(toast(geom)) == geom

    def test_span_and_set_pickle(self):
        from repro.meos import geomset, intset, tstzspanset

        for value in (
            intset("{1, 2, 3}"),
            tstzspanset("{[2025-01-01, 2025-01-02]}"),
            geomset("{Point(0 0)}"),
        ):
            assert detoast(toast(value)) == value


class TestIndexes:
    def test_btree_used_for_equality(self, con):
        con.execute("CREATE INDEX ia ON t USING BTREE(a)")
        plan = con.explain("SELECT * FROM t WHERE a = 2")
        assert "BTREE_INDEX_SCAN" in plan
        assert con.execute("SELECT b FROM t WHERE a = 2").scalar() == "two"

    def test_gist_on_temporal_column(self):
        con = core.connect_baseline()
        con.execute("CREATE TABLE trips(id INTEGER, trip TGEOMPOINT)")
        con.execute(
            "INSERT INTO trips SELECT i, ('[Point(' || i || ' 0)@2025-01-01"
            ", Point(' || (i + 1) || ' 0)@2025-01-02]') "
            "FROM generate_series(1, 50) AS t(i)"
        )
        con.execute("CREATE INDEX g ON trips USING GIST(trip)")
        query = (
            "SELECT count(*) FROM trips WHERE trip && "
            "stbox 'STBOX X((10.0,-1.0),(12.0,1.0))'"
        )
        plan = con.explain(query)
        assert "GIST_INDEX_SCAN" in plan
        got = con.execute(query).scalar()

        # Same result without the index.
        plain = core.connect_baseline()
        plain.execute("CREATE TABLE trips(id INTEGER, trip TGEOMPOINT)")
        plain.execute(
            "INSERT INTO trips SELECT i, ('[Point(' || i || ' 0)@2025-01-01"
            ", Point(' || (i + 1) || ' 0)@2025-01-02]') "
            "FROM generate_series(1, 50) AS t(i)"
        )
        assert plain.execute(query).scalar() == got

    def test_gist_index_nl_join(self):
        con = core.connect_baseline()
        con.execute("CREATE TABLE a_t(trip TGEOMPOINT)")
        con.execute("CREATE TABLE b_t(trip TGEOMPOINT)")
        for table in ("a_t", "b_t"):
            con.execute(
                f"INSERT INTO {table} SELECT "
                "('[Point(' || i || ' 0)@2025-01-01, Point(' || (i + 1) "
                "|| ' 0)@2025-01-02]') FROM generate_series(1, 30) AS t(i)"
            )
        con.execute("CREATE INDEX g ON b_t USING GIST(trip)")
        query = ("SELECT count(*) FROM a_t, b_t "
                 "WHERE b_t.trip && expandSpace(a_t.trip::STBOX, 0.1)")
        plan = con.explain(query)
        assert "INDEX_NL_JOIN" in plan
        got = con.execute(query).scalar()

        # Cross-check against the columnar engine without indexes.
        duck = core.connect()
        duck.execute("CREATE TABLE a_t(trip TGEOMPOINT)")
        duck.execute("CREATE TABLE b_t(trip TGEOMPOINT)")
        for table in ("a_t", "b_t"):
            duck.execute(
                f"INSERT INTO {table} SELECT "
                "('[Point(' || i || ' 0)@2025-01-01, Point(' || (i + 1) "
                "|| ' 0)@2025-01-02]') FROM generate_series(1, 30) AS t(i)"
            )
        assert duck.execute(query).scalar() == got


class TestCrossEngineEquivalence:
    """The same SQL must return the same rows on both engines."""

    QUERIES = [
        "SELECT duration('{1@2025-01-01, 2@2025-01-03}'::TINT, true)"
        "::VARCHAR",
        "SELECT length(tgeompoint '[Point(0 0)@2025-01-01, "
        "Point(3 4)@2025-01-02]')",
        "SELECT (tgeompoint '[Point(0 0)@2025-01-01, "
        "Point(1 1)@2025-01-02]')::tstzspan::VARCHAR",
        "SELECT whenTrue(tDwithin("
        "tgeompoint '[Point(0 0)@2025-01-01, Point(10 0)@2025-01-02]',"
        "tgeompoint '[Point(10 0)@2025-01-01, Point(0 0)@2025-01-02]',"
        "2.0))::VARCHAR",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_equivalence(self, query):
        duck = core.connect()
        base = core.connect_baseline()
        assert duck.execute(query).fetchall() == \
            base.execute(query).fetchall()
