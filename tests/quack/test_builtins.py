"""Built-in scalar function and aggregate coverage (both engines)."""

import pytest

from repro.pgsim import RowDatabase
from repro.quack import Database


@pytest.fixture(params=[Database, RowDatabase], ids=["quack", "pgsim"])
def con(request):
    return request.param().connect()


class TestStringFunctions:
    def test_concat_variadic(self, con):
        assert con.execute(
            "SELECT concat('a', 'b', 'c')"
        ).scalar() == "abc"

    def test_concat_skips_nulls(self, con):
        assert con.execute(
            "SELECT concat('a', NULL, 'c')"
        ).scalar() == "ac"

    def test_length_upper_lower_trim(self, con):
        assert con.execute("SELECT length('hello')").scalar() == 5
        assert con.execute("SELECT upper('abc')").scalar() == "ABC"
        assert con.execute("SELECT lower('ABC')").scalar() == "abc"
        assert con.execute("SELECT trim('  x  ')").scalar() == "x"

    def test_substring(self, con):
        assert con.execute(
            "SELECT substring('mobility', 3, 4)"
        ).scalar() == "bili"

    def test_contains(self, con):
        assert con.execute(
            "SELECT contains('mobilityduck', 'duck')"
        ).scalar() is True

    def test_like_patterns(self, con):
        assert con.execute("SELECT 'hello' LIKE 'h%o'").scalar() is True
        assert con.execute("SELECT 'hello' LIKE 'h_llo'").scalar() is True
        assert con.execute("SELECT 'hello' LIKE 'H%'").scalar() is False
        assert con.execute("SELECT 'hello' ILIKE 'H%'").scalar() is True
        assert con.execute("SELECT 'hello' NOT LIKE 'x%'").scalar() is True


class TestMathFunctions:
    def test_abs_round_floor_ceil(self, con):
        assert con.execute("SELECT abs(-4.5)").scalar() == 4.5
        assert con.execute("SELECT round(2.567, 2)").scalar() == 2.57
        assert con.execute("SELECT floor(2.9)").scalar() == 2
        assert con.execute("SELECT ceil(2.1)").scalar() == 3

    def test_sqrt_power_ln(self, con):
        assert con.execute("SELECT sqrt(16.0)").scalar() == 4.0
        assert con.execute("SELECT power(2.0, 10.0)").scalar() == 1024.0
        assert con.execute("SELECT ln(1.0)").scalar() == 0.0

    def test_greatest_least(self, con):
        assert con.execute("SELECT greatest(1, 7, 3)").scalar() == 7
        assert con.execute("SELECT least(1, 7, 3)").scalar() == 1

    def test_nullif(self, con):
        assert con.execute("SELECT nullif(5, 5)").scalar() is None
        assert con.execute("SELECT nullif(5, 6)").scalar() == 5

    def test_modulo_and_negate(self, con):
        assert con.execute("SELECT 17 % 5").scalar() == 2
        assert con.execute("SELECT -(3 + 4)").scalar() == -7


class TestDateTimeFunctions:
    def test_date_part_fields(self, con):
        base = "'2025-06-15 13:45:30'::TIMESTAMP"
        assert con.execute(
            f"SELECT date_part('month', {base})"
        ).scalar() == 6
        assert con.execute(
            f"SELECT date_part('hour', {base})"
        ).scalar() == 13
        assert con.execute(
            f"SELECT date_part('isodow', {base})"
        ).scalar() == 7  # a Sunday

    def test_date_trunc(self, con):
        got = con.execute(
            "SELECT date_trunc('day', '2025-06-15 13:45:30'::TIMESTAMP)"
        ).scalar()
        from repro.meos.timetypes import parse_timestamptz

        assert got == parse_timestamptz("2025-06-15")

    def test_epoch(self, con):
        assert con.execute(
            "SELECT epoch('1970-01-02'::TIMESTAMP)"
        ).scalar() == 86400.0

    def test_interval_literal_arith(self, con):
        got = con.execute(
            "SELECT ('2025-01-31'::TIMESTAMP + INTERVAL '1 month')"
            "::VARCHAR"
        ).scalar()
        assert got.startswith("2025-02-28")

    def test_timestamp_difference_is_interval(self, con):
        got = con.execute(
            "SELECT ('2025-01-03'::TIMESTAMP - '2025-01-01'::TIMESTAMP)"
            "::VARCHAR"
        ).scalar()
        assert got == "2 days"


class TestAggregates:
    @pytest.fixture
    def data(self, con):
        con.execute("CREATE TABLE v(g VARCHAR, x DOUBLE)")
        con.execute(
            "INSERT INTO v VALUES ('a', 1.0), ('a', 3.0), ('b', 5.0), "
            "('b', NULL)"
        )
        return con

    def test_string_agg(self, data):
        got = data.execute(
            "SELECT string_agg(g, ',') FROM v WHERE x IS NOT NULL"
        ).scalar()
        assert sorted(got.split(",")) == ["a", "a", "b"]

    def test_first(self, data):
        assert data.execute("SELECT first(g) FROM v").scalar() == "a"

    def test_avg_skips_nulls(self, data):
        assert data.execute(
            "SELECT avg(x) FROM v WHERE g = 'b'"
        ).scalar() == 5.0

    def test_min_max_strings(self, data):
        assert data.execute("SELECT min(g), max(g) FROM v") \
            .fetchone() == ("a", "b")

    def test_sum_empty_group_is_null(self, data):
        assert data.execute(
            "SELECT sum(x) FROM v WHERE g = 'zzz'"
        ).scalar() is None
