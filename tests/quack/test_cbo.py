"""Cost-based optimizer battery: ANALYZE statistics, join reordering,
and the ``SET cbo`` kill switch.

Every multi-table query here runs three ways — quack with cbo on, quack
with cbo off, and the pgsim row engine — and must return identical row
multisets.  The module forces verification mode on, so every reordered
plan also passes the RewriteVerifier's schema/conjunct checks, and uses
4 workers on the quack side to cover the morsel-parallel path (the CI
job additionally exports ``REPRO_VERIFICATION=1`` / ``REPRO_THREADS=4``
suite-wide).
"""

from collections import Counter

import pytest

from repro import core
from repro.analysis import set_verification_enabled
from repro.meos import STBox


@pytest.fixture(scope="module", autouse=True)
def _verification():
    previous = set_verification_enabled(True)
    yield
    set_verification_enabled(previous)


def _populate(con):
    """A seeded-skew star schema: ``trips`` is large, ``vehicles`` medium,
    ``types`` tiny — and the selective predicate sits on the table the
    binder sees *last*, so the heuristic left-deep order is maximally
    wrong."""
    con.execute(
        "CREATE TABLE trips(trip_id INTEGER, vehicle_id INTEGER,"
        " dist DOUBLE)"
    )
    con.execute(
        "CREATE TABLE vehicles(vehicle_id INTEGER, type_id INTEGER)"
    )
    con.execute("CREATE TABLE types(type_id INTEGER, label VARCHAR)")
    con.execute("CREATE TABLE depots(depot_id INTEGER, type_id INTEGER)")
    catalog = con.database.catalog
    catalog.get_table("trips").append_rows(
        [(i, i % 60, float(i % 97)) for i in range(600)]
    )
    catalog.get_table("vehicles").append_rows(
        [(i, i % 8) for i in range(60)]
    )
    catalog.get_table("types").append_rows(
        [(i, f"T{i}") for i in range(8)]
    )
    catalog.get_table("depots").append_rows(
        [(i, i % 8) for i in range(16)]
    )
    return con


@pytest.fixture(scope="module")
def quack_con():
    con = _populate(core.connect(workers=4))
    yield con
    con.close()


@pytest.fixture(scope="module")
def pgsim_con():
    return _populate(core.connect_baseline())


_QUERIES = [
    # 3-table equi-join chain with a selective tail filter
    "SELECT count(*) FROM trips, vehicles, types"
    " WHERE trips.vehicle_id = vehicles.vehicle_id"
    " AND vehicles.type_id = types.type_id AND types.label = 'T3'",
    # 4-table join with a range predicate
    "SELECT count(*), min(trips.dist) FROM trips, vehicles, types, depots"
    " WHERE trips.vehicle_id = vehicles.vehicle_id"
    " AND vehicles.type_id = types.type_id"
    " AND types.type_id = depots.type_id AND trips.dist < 20",
    # 5-relation query (same table twice) with BETWEEN
    "SELECT count(*) FROM trips t1, trips t2, vehicles, types, depots"
    " WHERE t1.trip_id = t2.trip_id"
    " AND t1.vehicle_id = vehicles.vehicle_id"
    " AND vehicles.type_id = types.type_id"
    " AND types.type_id = depots.type_id"
    " AND t1.dist BETWEEN 10 AND 30",
    # projection keeps binder column order observable after reordering
    "SELECT trips.trip_id, types.label FROM trips, vehicles, types"
    " WHERE trips.vehicle_id = vehicles.vehicle_id"
    " AND vehicles.type_id = types.type_id AND types.label = 'T0'"
    " ORDER BY trips.trip_id LIMIT 7",
]


def _multiset(result):
    return Counter(map(repr, result.fetchall()))


class TestDifferential:
    @pytest.mark.parametrize("sql", _QUERIES)
    def test_cbo_on_off_and_pgsim_agree(self, quack_con, pgsim_con, sql):
        for con in (quack_con, pgsim_con):
            con.execute("ANALYZE")
        quack_con.execute("SET cbo = on")
        pgsim_con.execute("SET cbo = on")
        on_rows = _multiset(quack_con.execute(sql))
        pg_rows = _multiset(pgsim_con.execute(sql))
        quack_con.execute("SET cbo = off")
        off_rows = _multiset(quack_con.execute(sql))
        quack_con.execute("SET cbo = on")
        assert on_rows == off_rows, sql
        assert on_rows == pg_rows, sql


class TestReordering:
    def test_dp_picks_non_binder_order_on_skew(self, quack_con):
        """The selective table is last in binder order; with statistics
        the DP must pull it ahead, changing the plan shape and emitting
        the column-restoring projection."""
        sql = _QUERIES[0]
        quack_con.execute("ANALYZE")
        quack_con.execute("SET cbo = off")
        heuristic = quack_con.execute("EXPLAIN " + sql).rows[0][0]
        quack_con.execute("SET cbo = on")
        cbo = quack_con.execute("EXPLAIN " + sql).rows[0][0]
        assert cbo != heuristic
        assert "(est=" in cbo
        assert "(est=" not in heuristic
        stats = quack_con.last_query_stats
        assert stats.counters.get("optimizer.cbo.planned", 0) >= 1
        assert stats.counters.get("optimizer.cbo.dp_plans", 0) >= 1
        assert stats.counters.get("optimizer.cbo.reordered", 0) >= 1

    def test_explain_analyze_shows_est_vs_actual(self, quack_con):
        quack_con.execute("ANALYZE")
        text = quack_con.execute(
            "EXPLAIN ANALYZE " + _QUERIES[0]
        ).rows[0][0]
        assert "est=" in text
        assert "rows=" in text

    def test_analyze_less_plan_is_heuristic(self):
        """Without ANALYZE, cbo=on must produce the exact heuristic plan."""
        con = _populate(core.connect())
        sql = _QUERIES[0]
        with_cbo = con.execute("EXPLAIN " + sql).rows[0][0]
        con.execute("SET cbo = off")
        without = con.execute("EXPLAIN " + sql).rows[0][0]
        assert with_cbo == without
        assert "est=" not in with_cbo
        con.close()


class TestCopyOnWrite:
    def test_double_optimize_is_idempotent_and_nonmutating(self, quack_con):
        """Satellite regression: optimizing the same bound plan twice must
        give bit-identical output and leave the input plan untouched."""
        from repro.quack.binder import Binder, BinderContext
        from repro.quack.optimizer import optimize
        from repro.quack.sql.parser import parse_sql

        quack_con.execute("ANALYZE")
        db = quack_con.database
        stmt = parse_sql(_QUERIES[1])[0]
        context = BinderContext(db.catalog, db.functions, db.types)
        bound = Binder(context).bind_select(stmt)
        before = bound.explain()
        first = optimize(bound).explain()
        assert bound.explain() == before, "optimize mutated its input"
        second = optimize(bound).explain()
        assert first == second
        assert bound.explain() == before


class TestKillSwitch:
    def test_set_show_roundtrip(self, quack_con):
        quack_con.execute("SET cbo = off")
        assert quack_con.execute("SHOW cbo").rows == [("off",)]
        quack_con.execute("SET cbo = on")
        assert quack_con.execute("SHOW cbo").rows == [("on",)]

    def test_invalid_value_rejected(self, quack_con):
        from repro.quack.errors import QuackError

        with pytest.raises(QuackError):
            quack_con.execute("SET cbo = 17")

    def test_pgsim_kill_switch(self, pgsim_con):
        pgsim_con.execute("SET cbo = off")
        assert pgsim_con.execute("SHOW cbo").rows == [("off",)]
        pgsim_con.execute("SET cbo = on")


class TestStatistics:
    def test_analyze_result_and_column_stats(self):
        con = _populate(core.connect())
        result = con.execute("ANALYZE trips")
        assert result.rows == [("trips", 600, 3)]
        stats = con.database.catalog.get_table("trips").stats
        assert stats.row_count == 600
        ids = stats.column(0)
        assert ids.min_value == 0 and ids.max_value == 599
        assert ids.distinct_count == 600
        assert ids.null_count == 0
        vehicle = stats.column(1)
        assert vehicle.distinct_count == 60
        con.close()

    def test_stbox_extent_histograms(self):
        con = core.connect()
        con.execute("CREATE TABLE regions(region_id INTEGER, box STBOX)")
        boxes = [
            (i, STBox(xmin=float(i), ymin=0.0,
                      xmax=float(i) + 1.0, ymax=1.0))
            for i in range(100)
        ]
        con.database.catalog.get_table("regions").append_rows(boxes)
        con.execute("ANALYZE regions")
        stats = con.database.catalog.get_table("regions").stats
        column = stats.column(1)
        assert column.box_count == 100
        assert set(column.box_dimensions) == {"x", "y"}
        from repro.quack.stats import overlap_selectivity

        probe = STBox(xmin=0.0, ymin=0.0, xmax=10.0, ymax=1.0)
        narrow = overlap_selectivity(column, probe)
        wide = overlap_selectivity(
            column, STBox(xmin=0.0, ymin=0.0, xmax=101.0, ymax=1.0)
        )
        assert 0.0 < narrow < wide <= 1.0
        con.close()

    def test_selectivities_clamped(self):
        from repro.quack import stats as table_stats

        assert table_stats.clamp01(float("nan")) == 0.5
        assert table_stats.clamp01(-3.0) == 0.0
        assert table_stats.clamp01(7.0) == 1.0
        assert table_stats.comparison_selectivity(None, "=", 1) <= 1.0
