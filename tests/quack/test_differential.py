"""Differential testing: quack and pgsim must agree on random queries.

Hypothesis generates small tables and queries from a constrained SQL
grammar; both engines execute them and must return identical multisets of
rows.  This guards the shared semantics against divergence between the
vectorized and the row-at-a-time execution paths.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgsim import RowDatabase
from repro.quack import Database

_COLUMNS = ("a", "b", "c")


@st.composite
def _tables(draw):
    rows = draw(st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(-5, 5)),
            st.one_of(st.none(), st.integers(0, 3)),
            st.one_of(st.none(), st.sampled_from(["x", "y", "z"])),
        ),
        min_size=0,
        max_size=12,
    ))
    return rows


@st.composite
def _predicates(draw):
    column = draw(st.sampled_from(["a", "b"]))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    value = draw(st.integers(-5, 5))
    clause = f"{column} {op} {value}"
    if draw(st.booleans()):
        other = draw(st.sampled_from([
            "c = 'x'", "c IS NULL", "a IS NOT NULL", "b IN (1, 2)",
        ]))
        joiner = draw(st.sampled_from(["AND", "OR"]))
        clause = f"({clause}) {joiner} ({other})"
    return clause


def _load(factory, rows):
    con = factory().connect()
    con.execute("CREATE TABLE t(a INTEGER, b INTEGER, c VARCHAR)")
    if rows:
        con.database.catalog.get_table("t").append_rows(rows)
    return con


def _agree(rows, sql):
    duck = _load(Database, rows).execute(sql).fetchall()
    base = _load(RowDatabase, rows).execute(sql).fetchall()
    assert Counter(map(repr, duck)) == Counter(map(repr, base)), sql


class TestDifferential:
    @given(_tables(), _predicates())
    @settings(max_examples=60, deadline=None)
    def test_filters(self, rows, predicate):
        _agree(rows, f"SELECT a, b, c FROM t WHERE {predicate}")

    @given(_tables())
    @settings(max_examples=40, deadline=None)
    def test_aggregates(self, rows):
        _agree(
            rows,
            "SELECT b, count(*), count(a), sum(a), min(a), max(a) "
            "FROM t GROUP BY b ORDER BY b",
        )

    @given(_tables())
    @settings(max_examples=40, deadline=None)
    def test_distinct_order_limit(self, rows):
        _agree(
            rows,
            "SELECT DISTINCT a FROM t ORDER BY a LIMIT 5",
        )

    @given(_tables(), _tables())
    @settings(max_examples=40, deadline=None)
    def test_joins(self, left_rows, right_rows):
        def load(factory):
            con = factory().connect()
            con.execute("CREATE TABLE l(a INTEGER, b INTEGER, c VARCHAR)")
            con.execute("CREATE TABLE r(a INTEGER, b INTEGER, c VARCHAR)")
            if left_rows:
                con.database.catalog.get_table("l").append_rows(left_rows)
            if right_rows:
                con.database.catalog.get_table("r").append_rows(right_rows)
            return con

        sql = ("SELECT l.a, r.b FROM l, r "
               "WHERE l.a = r.a AND l.b >= 1")
        duck = load(Database).execute(sql).fetchall()
        base = load(RowDatabase).execute(sql).fetchall()
        assert Counter(map(repr, duck)) == Counter(map(repr, base))

    @given(_tables())
    @settings(max_examples=30, deadline=None)
    def test_subqueries(self, rows):
        _agree(
            rows,
            "SELECT a FROM t WHERE a <= ALL "
            "(SELECT a FROM t WHERE a IS NOT NULL) ORDER BY a",
        )

    @given(_tables())
    @settings(max_examples=30, deadline=None)
    def test_set_operations(self, rows):
        _agree(
            rows,
            "SELECT a FROM t WHERE b = 1 UNION SELECT a FROM t "
            "WHERE b = 2 ORDER BY a",
        )

    @given(_tables(), _tables())
    @settings(max_examples=40, deadline=None)
    def test_left_joins(self, left_rows, right_rows):
        def load(factory):
            con = factory().connect()
            con.execute("CREATE TABLE l(a INTEGER, b INTEGER, c VARCHAR)")
            con.execute("CREATE TABLE r(a INTEGER, b INTEGER, c VARCHAR)")
            if left_rows:
                con.database.catalog.get_table("l").append_rows(left_rows)
            if right_rows:
                con.database.catalog.get_table("r").append_rows(right_rows)
            return con

        sql = ("SELECT l.a, l.b, r.c FROM l LEFT JOIN r "
               "ON l.a = r.a AND r.b > 0")
        duck = load(Database).execute(sql).fetchall()
        base = load(RowDatabase).execute(sql).fetchall()
        assert Counter(map(repr, duck)) == Counter(map(repr, base))

    @given(_tables())
    @settings(max_examples=30, deadline=None)
    def test_having(self, rows):
        _agree(
            rows,
            "SELECT b, count(*) FROM t GROUP BY b "
            "HAVING count(*) >= 2 ORDER BY b",
        )

    @given(_tables(), _predicates())
    @settings(max_examples=40, deadline=None)
    def test_case_and_arithmetic(self, rows, predicate):
        _agree(
            rows,
            "SELECT a, CASE WHEN a > 0 THEN a * 2 ELSE -a END FROM t "
            f"WHERE {predicate} ORDER BY 1, 2",
        )


def _ordered_agree(rows, sql):
    """Row ORDER must match exactly (not just as a multiset)."""
    duck = _load(Database, rows).execute(sql).fetchall()
    base = _load(RowDatabase, rows).execute(sql).fetchall()
    assert list(map(repr, duck)) == list(map(repr, base)), sql


class TestOrderByNullSemantics:
    """ASC/DESC x NULLS FIRST/LAST/default must agree across engines,
    including tie stability (both engines sort stably in scan order)."""

    @pytest.mark.parametrize("direction", ["ASC", "DESC"])
    @pytest.mark.parametrize("nulls", ["", "NULLS FIRST", "NULLS LAST"])
    @given(_tables())
    @settings(max_examples=20, deadline=None)
    def test_null_placement(self, direction, nulls, rows):
        _ordered_agree(
            rows,
            f"SELECT a, b, c FROM t ORDER BY a {direction} {nulls}".strip(),
        )

    @pytest.mark.parametrize("keys", [
        "a ASC NULLS FIRST, b DESC",
        "b DESC NULLS LAST, a ASC",
        "c ASC, a DESC NULLS FIRST",
    ])
    @given(_tables())
    @settings(max_examples=15, deadline=None)
    def test_multi_key(self, keys, rows):
        _ordered_agree(rows, f"SELECT a, b, c FROM t ORDER BY {keys}")


class TestNaNGroupsDifferential:
    """NaN group keys and NaN-aware min/max must agree across engines."""

    @given(st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(0, 2)),
            st.one_of(
                st.none(),
                st.just(float("nan")),
                st.just(-0.0),
                st.floats(-4, 4, allow_nan=False),
            ),
        ),
        min_size=0,
        max_size=12,
    ))
    @settings(max_examples=40, deadline=None)
    def test_nan_aggregates(self, rows):
        def run(factory):
            con = factory().connect()
            con.execute("CREATE TABLE f(g INTEGER, x DOUBLE)")
            if rows:
                con.database.catalog.get_table("f").append_rows(rows)
            return con.execute(
                "SELECT x, count(*), min(x), max(x) FROM f GROUP BY x"
            ).fetchall()

        duck = run(Database)
        base = run(RowDatabase)
        assert Counter(map(repr, duck)) == Counter(map(repr, base))

    @given(st.lists(
        st.one_of(
            st.none(),
            st.just(float("nan")),
            st.floats(-4, 4, allow_nan=False),
        ),
        min_size=0,
        max_size=10,
    ))
    @settings(max_examples=40, deadline=None)
    def test_nan_order_by(self, values):
        def run(factory):
            con = factory().connect()
            con.execute("CREATE TABLE f(x DOUBLE)")
            if values:
                con.database.catalog.get_table("f").append_rows(
                    [(v,) for v in values]
                )
            return con.execute(
                "SELECT x FROM f ORDER BY x DESC NULLS LAST"
            ).fetchall()

        assert list(map(repr, run(Database))) == list(
            map(repr, run(RowDatabase))
        )
