"""End-to-end SQL engine tests: DDL, DML, SELECT features.

Parametrized over both engines: every behaviour must hold on the columnar
quack engine and on the row-store pgsim baseline (they share SQL
semantics; only the execution strategy differs).
"""

import pytest

from repro.pgsim import RowDatabase
from repro.quack import (
    BinderError,
    CatalogError,
    Database,
    ExecutionError,
    ParserError,
)


@pytest.fixture(params=[Database, RowDatabase], ids=["quack", "pgsim"])
def con(request):
    db = request.param()
    con = db.connect()
    con.execute("CREATE TABLE t(a INTEGER, b VARCHAR, c DOUBLE)")
    con.execute(
        "INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5), "
        "(3, 'three', 3.5), (NULL, 'null', NULL)"
    )
    return con


class TestBasics:
    def test_select_constant(self, con):
        assert con.execute("SELECT 1 + 1").scalar() == 2

    def test_projection(self, con):
        rows = con.execute("SELECT a, b FROM t WHERE a = 2").fetchall()
        assert rows == [(2, "two")]

    def test_where_nulls_filtered(self, con):
        rows = con.execute("SELECT a FROM t WHERE a > 0").fetchall()
        assert len(rows) == 3

    def test_is_null(self, con):
        assert con.execute(
            "SELECT b FROM t WHERE a IS NULL"
        ).fetchall() == [("null",)]

    def test_order_by(self, con):
        rows = con.execute("SELECT a FROM t WHERE a IS NOT NULL "
                           "ORDER BY a DESC").fetchall()
        assert [r[0] for r in rows] == [3, 2, 1]

    def test_order_by_nulls_last_asc(self, con):
        rows = con.execute("SELECT a FROM t ORDER BY a").fetchall()
        assert rows[-1][0] is None

    def test_limit_offset(self, con):
        rows = con.execute(
            "SELECT a FROM t WHERE a IS NOT NULL ORDER BY a "
            "LIMIT 1 OFFSET 1"
        ).fetchall()
        assert rows == [(2,)]

    def test_distinct(self, con):
        con.execute("INSERT INTO t VALUES (1, 'one', 1.5)")
        rows = con.execute("SELECT DISTINCT a, b FROM t WHERE a = 1")
        assert len(rows) == 1

    def test_case(self, con):
        rows = con.execute(
            "SELECT CASE WHEN a >= 2 THEN 'big' ELSE 'small' END "
            "FROM t WHERE a IS NOT NULL ORDER BY a"
        ).fetchall()
        assert [r[0] for r in rows] == ["small", "big", "big"]

    def test_in_list(self, con):
        rows = con.execute("SELECT a FROM t WHERE a IN (1, 3) ORDER BY a")
        assert [r[0] for r in rows] == [1, 3]

    def test_between(self, con):
        rows = con.execute("SELECT a FROM t WHERE a BETWEEN 2 AND 3 "
                           "ORDER BY a")
        assert [r[0] for r in rows] == [2, 3]

    def test_like(self, con):
        rows = con.execute("SELECT b FROM t WHERE b LIKE 't%' ORDER BY b")
        assert [r[0] for r in rows] == ["three", "two"]

    def test_string_concat(self, con):
        assert con.execute("SELECT 'a' || 1 || 'b'").scalar() == "a1b"

    def test_division_by_zero_is_null(self, con):
        assert con.execute("SELECT 1 / 0").scalar() is None

    def test_three_valued_logic(self, con):
        # NULL AND FALSE is FALSE; NULL AND TRUE is NULL.
        assert con.execute("SELECT count(*) FROM t "
                           "WHERE a > 0 AND b = 'nope'").scalar() == 0


class TestAggregation:
    def test_global_aggregates(self, con):
        row = con.execute(
            "SELECT count(*), count(a), sum(a), min(a), max(a), avg(a) "
            "FROM t"
        ).fetchone()
        assert row == (4, 3, 6, 1, 3, 2.0)

    def test_group_by(self, con):
        con.execute("INSERT INTO t VALUES (1, 'uno', 9.0)")
        rows = con.execute(
            "SELECT a, count(*) FROM t WHERE a IS NOT NULL "
            "GROUP BY a ORDER BY a"
        ).fetchall()
        assert rows == [(1, 2), (2, 1), (3, 1)]

    def test_group_by_expression(self, con):
        rows = con.execute(
            "SELECT a % 2, count(*) FROM t WHERE a IS NOT NULL "
            "GROUP BY a % 2 ORDER BY 1"
        ).fetchall()
        assert rows == [(0, 1), (1, 2)]

    def test_having(self, con):
        con.execute("INSERT INTO t VALUES (1, 'uno', 9.0)")
        rows = con.execute(
            "SELECT a FROM t WHERE a IS NOT NULL GROUP BY a "
            "HAVING count(*) > 1"
        ).fetchall()
        assert rows == [(1,)]

    def test_count_distinct(self, con):
        con.execute("INSERT INTO t VALUES (1, 'x', 0.0)")
        assert con.execute(
            "SELECT count(DISTINCT a) FROM t"
        ).scalar() == 3

    def test_list_aggregate(self, con):
        got = con.execute(
            "SELECT list(a) FROM t WHERE a IS NOT NULL"
        ).scalar()
        assert sorted(got) == [1, 2, 3]

    def test_aggregate_empty_input(self, con):
        row = con.execute("SELECT count(*), sum(a) FROM t WHERE a > 99")
        assert row.fetchone() == (0, None)

    def test_order_by_aggregate(self, con):
        rows = con.execute(
            "SELECT b, count(*) FROM t GROUP BY b ORDER BY count(*) DESC, b"
        )
        assert len(rows) == 4


class TestJoins:
    @pytest.fixture
    def joined(self, con):
        con.execute("CREATE TABLE s(a INTEGER, tag VARCHAR)")
        con.execute("INSERT INTO s VALUES (1, 'x'), (2, 'y'), (9, 'z')")
        return con

    def test_hash_join_from_where(self, joined):
        rows = joined.execute(
            "SELECT t.a, s.tag FROM t, s WHERE t.a = s.a ORDER BY t.a"
        ).fetchall()
        assert rows == [(1, "x"), (2, "y")]

    def test_explicit_join(self, joined):
        rows = joined.execute(
            "SELECT t.a, s.tag FROM t JOIN s ON t.a = s.a ORDER BY t.a"
        ).fetchall()
        assert rows == [(1, "x"), (2, "y")]

    def test_left_join(self, joined):
        rows = joined.execute(
            "SELECT s.a, t.b FROM s LEFT JOIN t ON s.a = t.a ORDER BY s.a"
        ).fetchall()
        assert rows == [(1, "one"), (2, "two"), (9, None)]

    def test_cross_join_count(self, joined):
        assert joined.execute(
            "SELECT count(*) FROM t, s"
        ).scalar() == 12

    def test_non_equi_join(self, joined):
        rows = joined.execute(
            "SELECT t.a, s.a FROM t, s WHERE t.a < s.a AND s.a < 5 "
            "ORDER BY t.a, s.a"
        ).fetchall()
        assert rows == [(1, 2)]

    def test_self_join_aliases(self, joined):
        rows = joined.execute(
            "SELECT t1.a FROM t t1, t t2 "
            "WHERE t1.a = t2.a AND t1.a IS NOT NULL ORDER BY 1"
        )
        assert len(rows) == 3


class TestSubqueries:
    def test_scalar_subquery(self, con):
        assert con.execute(
            "SELECT (SELECT max(a) FROM t)"
        ).scalar() == 3

    def test_in_subquery(self, con):
        rows = con.execute(
            "SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE a > 1) "
            "ORDER BY a"
        ).fetchall()
        assert [r[0] for r in rows] == [2, 3]

    def test_correlated_scalar(self, con):
        rows = con.execute(
            "SELECT a FROM t t1 WHERE a = "
            "(SELECT min(a) FROM t t2 WHERE t2.a >= t1.a)"
        )
        assert len(rows) == 3

    def test_quantified_all(self, con):
        rows = con.execute(
            "SELECT a FROM t WHERE a <= ALL (SELECT a FROM t "
            "WHERE a IS NOT NULL)"
        ).fetchall()
        assert rows == [(1,)]

    def test_quantified_any(self, con):
        rows = con.execute(
            "SELECT a FROM t WHERE a > ANY (SELECT a FROM t "
            "WHERE a IS NOT NULL) ORDER BY a"
        ).fetchall()
        assert [r[0] for r in rows] == [2, 3]

    def test_exists(self, con):
        assert con.execute(
            "SELECT count(*) FROM t WHERE EXISTS (SELECT 1 WHERE 1 = 1)"
        ).scalar() == 4

    def test_correlated_all_like_query7(self, con):
        # The paper's Query 7 shape: <= ALL with correlation.
        con.execute("CREATE TABLE ts(k INTEGER, v INTEGER)")
        con.execute(
            "INSERT INTO ts VALUES (1, 10), (1, 20), (2, 5), (2, 5)"
        )
        rows = con.execute(
            "SELECT k, v FROM ts t1 WHERE t1.v <= ALL "
            "(SELECT t2.v FROM ts t2 WHERE t1.k = t2.k) ORDER BY k, v"
        ).fetchall()
        assert rows == [(1, 10), (2, 5), (2, 5)]


class TestCtes:
    def test_basic(self, con):
        assert con.execute(
            "WITH big AS (SELECT a FROM t WHERE a >= 2) "
            "SELECT count(*) FROM big"
        ).scalar() == 2

    def test_referenced_twice(self, con):
        got = con.execute(
            "WITH c AS (SELECT a FROM t WHERE a IS NOT NULL) "
            "SELECT (SELECT count(*) FROM c) + (SELECT sum(a) FROM c)"
        ).scalar()
        assert got == 9

    def test_chained(self, con):
        assert con.execute(
            "WITH a AS (SELECT 2 AS x), b AS (SELECT x * 10 AS y FROM a) "
            "SELECT y FROM b"
        ).scalar() == 20

    def test_column_aliases(self, con):
        assert con.execute(
            "WITH c(n) AS (SELECT a FROM t WHERE a = 1) SELECT n FROM c"
        ).scalar() == 1


class TestDml:
    def test_update(self, con):
        con.execute("UPDATE t SET c = c * 2 WHERE a = 1")
        assert con.execute(
            "SELECT c FROM t WHERE a = 1"
        ).scalar() == 3.0

    def test_update_all(self, con):
        con.execute("UPDATE t SET b = 'x'")
        assert con.execute(
            "SELECT count(*) FROM t WHERE b = 'x'"
        ).scalar() == 4

    def test_delete(self, con):
        con.execute("DELETE FROM t WHERE a = 1")
        assert con.execute("SELECT count(*) FROM t").scalar() == 3

    def test_delete_all(self, con):
        con.execute("DELETE FROM t")
        assert con.execute("SELECT count(*) FROM t").scalar() == 0

    def test_insert_column_subset(self, con):
        con.execute("INSERT INTO t(a) VALUES (42)")
        row = con.execute("SELECT a, b, c FROM t WHERE a = 42").fetchone()
        assert row == (42, None, None)

    def test_create_table_as(self, con):
        con.execute("CREATE TABLE t2 AS SELECT a, b FROM t WHERE a > 1")
        assert con.execute("SELECT count(*) FROM t2").scalar() == 2


class TestTableFunctions:
    def test_generate_series(self, con):
        rows = con.execute(
            "SELECT i FROM generate_series(1, 5) AS g(i)"
        ).fetchall()
        assert [r[0] for r in rows] == [1, 2, 3, 4, 5]

    def test_generate_series_in_insert(self, con):
        con.execute("CREATE TABLE nums(n BIGINT)")
        con.execute(
            "INSERT INTO nums SELECT i * 2 FROM generate_series(1, 100) "
            "AS g(i)"
        )
        assert con.execute("SELECT count(*), max(n) FROM nums") \
            .fetchone() == (100, 200)


class TestErrors:
    def test_unknown_table(self, con):
        with pytest.raises(CatalogError):
            con.execute("SELECT * FROM nope")

    def test_unknown_column(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT nope FROM t")

    def test_unknown_function(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT frobnicate(a) FROM t")

    def test_ambiguous_column(self, con):
        con.execute("CREATE TABLE u(a INTEGER)")
        with pytest.raises(BinderError):
            con.execute("SELECT a FROM t, u")

    def test_duplicate_table(self, con):
        with pytest.raises(CatalogError):
            con.execute("CREATE TABLE t(x INTEGER)")

    def test_scalar_subquery_multiple_rows(self, con):
        with pytest.raises(ExecutionError):
            con.execute("SELECT (SELECT a FROM t)")

    def test_where_requires_boolean(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT * FROM t WHERE a")


class TestTimestamps:
    def test_timestamp_arithmetic(self, con):
        got = con.execute(
            "SELECT '2025-01-01'::TIMESTAMP + INTERVAL '36 hours'"
        ).scalar()
        from repro.meos.timetypes import parse_timestamptz

        assert got == parse_timestamptz("2025-01-02 12:00:00")

    def test_timestamp_comparison(self, con):
        assert con.execute(
            "SELECT '2025-01-02'::TIMESTAMP > '2025-01-01'::TIMESTAMP"
        ).scalar() is True

    def test_date_part(self, con):
        assert con.execute(
            "SELECT date_part('year', '2025-06-15'::TIMESTAMP)"
        ).scalar() == 2025
