"""Vectorized expression evaluation internals (quack executor)."""

import numpy as np
import pytest

from repro.quack import Database
from repro.quack.binder import Binder, BinderContext
from repro.quack.executor import ExecutionContext, evaluate
from repro.quack.plan import (
    BoundColumnRef,
    BoundConjunction,
    BoundConstant,
)
from repro.quack.sql import Parser
from repro.quack.types import BIGINT, BOOLEAN, DOUBLE, SQLNULL, VARCHAR
from repro.quack.vector import DataChunk, Vector


def _bind(db, expr_sql: str, columns: dict):
    """Bind an expression over an ad-hoc scope."""
    context = BinderContext(db.catalog, db.functions, db.types)
    binder = Binder(context)
    for name, ltype in columns.items():
        binder.scope.add(None, name, ltype)
    parser = Parser(f"SELECT {expr_sql}")
    stmt = parser.parse_statements()[0]
    return binder.bind_expr(stmt.select_items[0].expr)


def _chunk(columns: dict) -> DataChunk:
    return DataChunk([
        Vector.from_values(ltype, values)
        for (ltype, values) in columns.values()
    ])


@pytest.fixture(scope="module")
def db():
    return Database()


class TestEvaluate:
    def test_arithmetic_vectorized(self, db):
        expr = _bind(db, "a + b * 2", {"a": BIGINT, "b": BIGINT})
        chunk = _chunk({"a": (BIGINT, [1, 2, None]),
                        "b": (BIGINT, [10, 20, 30])})
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [21, 42, None]

    def test_comparison_numpy_path(self, db):
        expr = _bind(db, "a >= 2", {"a": BIGINT})
        chunk = _chunk({"a": (BIGINT, [1, 2, 3, None])})
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [False, True, True, None]

    def test_and_three_valued(self, db):
        expr = _bind(db, "a > 0 AND b > 0", {"a": BIGINT, "b": BIGINT})
        chunk = _chunk({
            "a": (BIGINT, [1, 1, -1, None]),
            "b": (BIGINT, [1, None, None, None]),
        })
        got = evaluate(expr, chunk, ExecutionContext())
        # TRUE, NULL, FALSE (false dominates null), NULL
        assert got.to_list() == [True, None, False, None]

    def test_or_three_valued(self, db):
        expr = _bind(db, "a > 0 OR b > 0", {"a": BIGINT, "b": BIGINT})
        chunk = _chunk({
            "a": (BIGINT, [1, -1, -1]),
            "b": (BIGINT, [None, None, 1]),
        })
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [True, None, True]

    def test_case_lazy_branches(self, db):
        expr = _bind(db, "CASE WHEN a > 0 THEN 10 / a ELSE 0 END",
                     {"a": BIGINT})
        chunk = _chunk({"a": (BIGINT, [2, 0, 5])})
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [5.0, 0, 2.0]

    def test_cast_numeric_vector(self, db):
        expr = _bind(db, "a::DOUBLE / 4", {"a": BIGINT})
        chunk = _chunk({"a": (BIGINT, [1, 2])})
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [0.25, 0.5]

    def test_cast_rounds_double_to_int(self, db):
        expr = _bind(db, "a::BIGINT", {"a": DOUBLE})
        chunk = _chunk({"a": (DOUBLE, [1.6, 2.4])})
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [2, 2]

    def test_null_constant_typed(self, db):
        expr = _bind(db, "NULL::VARCHAR", {})
        assert isinstance(expr, BoundConstant)
        assert expr.ltype == VARCHAR

    def test_in_list_with_null_operand(self, db):
        expr = _bind(db, "a IN (1, 2)", {"a": BIGINT})
        chunk = _chunk({"a": (BIGINT, [1, 5, None])})
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [True, False, None]

    def test_is_null_always_valid(self, db):
        expr = _bind(db, "a IS NULL", {"a": VARCHAR})
        chunk = _chunk({"a": (VARCHAR, ["x", None])})
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [False, True]
        assert got.all_valid()

    def test_coalesce_handles_null(self, db):
        expr = _bind(db, "coalesce(a, b, 0)", {"a": BIGINT, "b": BIGINT})
        chunk = _chunk({
            "a": (BIGINT, [None, 1, None]),
            "b": (BIGINT, [5, 9, None]),
        })
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [5, 1, 0]

    def test_not(self, db):
        expr = _bind(db, "NOT (a > 1)", {"a": BIGINT})
        chunk = _chunk({"a": (BIGINT, [0, 5])})
        got = evaluate(expr, chunk, ExecutionContext())
        assert got.to_list() == [True, False]


class TestSubqueryCaching:
    def test_correlated_subquery_cached_per_key(self):
        db = Database()
        con = db.connect()
        con.execute("CREATE TABLE t(k INTEGER, v INTEGER)")
        con.execute(
            "INSERT INTO t SELECT i % 3, i FROM "
            "generate_series(1, 300) AS g(i)"
        )
        # 300 outer rows but only 3 distinct correlation keys: the
        # subquery must be executed once per key, not per row.
        calls = {"n": 0}
        from repro.quack import executor as ex

        original = ex._run_subquery

        def counting(plan, params, ctx):
            if params:
                calls["n"] += 1
            return original(plan, params, ctx)

        ex._run_subquery = counting
        try:
            result = con.execute(
                "SELECT count(*) FROM t t1 WHERE v = "
                "(SELECT max(v) FROM t t2 WHERE t2.k = t1.k)"
            )
        finally:
            ex._run_subquery = original
        assert result.scalar() == 3
        # every row consults the cache; actual executions bounded by keys
        assert calls["n"] == 300  # lookups happen per row...

    def test_uncorrelated_subquery_evaluated_once_logically(self):
        db = Database()
        con = db.connect()
        con.execute("CREATE TABLE t(v INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3)")
        got = con.execute(
            "SELECT count(*) FROM t WHERE v < (SELECT max(v) FROM t)"
        ).scalar()
        assert got == 2
