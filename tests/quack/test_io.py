"""CSV import/export and result presentation tests."""

import os

import pytest

from repro import core, quack
from repro.quack import Database
from repro.quack.errors import QuackError


@pytest.fixture
def con():
    con = Database().connect()
    con.execute("CREATE TABLE t(a INTEGER, b VARCHAR, c DOUBLE)")
    con.execute(
        "INSERT INTO t VALUES (1, 'x', 1.5), (2, NULL, 2.5)"
    )
    return con


class TestResultHelpers:
    def test_columns_dict(self, con):
        cols = con.execute("SELECT a, b FROM t ORDER BY a").columns()
        assert cols == {"a": [1, 2], "b": ["x", None]}

    def test_format_table(self, con):
        text = quack.format_table(con.execute("SELECT a, b FROM t"))
        assert "a" in text.splitlines()[0]
        assert "NULL" in text

    def test_format_table_truncates(self, con):
        con.execute(
            "INSERT INTO t SELECT i, 'r', 0.0 FROM "
            "generate_series(1, 50) AS g(i)"
        )
        text = quack.format_table(con.execute("SELECT a FROM t"),
                                  max_rows=5)
        assert "rows total" in text


class TestCsvRoundTrip:
    def test_basic_round_trip(self, con, tmp_path):
        path = str(tmp_path / "out.csv")
        result = con.execute("SELECT a, b, c FROM t ORDER BY a")
        assert quack.write_csv(result, path) == 2
        n = quack.read_csv(con, path, "t2")
        assert n == 2
        rows = con.execute("SELECT a, b, c FROM t2 ORDER BY a").fetchall()
        assert rows[0] == (1, "x", 1.5)
        assert rows[1][1] is None

    def test_type_sniffing(self, con, tmp_path):
        path = str(tmp_path / "sniff.csv")
        with open(path, "w") as f:
            f.write("i,f,s,flag\n1,1.5,abc,true\n2,2.5,def,false\n")
        quack.read_csv(con, path, "sniffed")
        table = con.database.catalog.get_table("sniffed")
        assert [t.name for t in table.column_types] == [
            "BIGINT", "DOUBLE", "VARCHAR", "BOOLEAN"
        ]

    def test_extension_type_override(self, tmp_path):
        con = core.connect()
        path = str(tmp_path / "trips.csv")
        with open(path, "w") as f:
            f.write("id,trip\n")
            f.write('1,"[Point(0 0)@2025-01-01, Point(3 4)@2025-01-02]"\n')
        quack.read_csv(con, path, "trips", column_types={
            "trip": "TGEOMPOINT"
        })
        assert con.execute("SELECT length(trip) FROM trips").scalar() == 5.0

    def test_empty_file_rejected(self, con, tmp_path):
        path = str(tmp_path / "empty.csv")
        open(path, "w").close()
        with pytest.raises(QuackError):
            quack.read_csv(con, path, "nope")


class TestSnifferStrictness:
    """Python's int()/float() accept wider syntax than SQL literals; the
    sniffer must not promote such cells to numeric types."""

    def _sniff(self, con, tmp_path, cells):
        path = str(tmp_path / "strict.csv")
        with open(path, "w") as f:
            f.write("v\n")
            for cell in cells:
                f.write(f"{cell}\n")
        quack.read_csv(con, path, "strict")
        table = con.database.catalog.get_table("strict")
        return table.column_types[0].name

    def test_underscored_int_stays_varchar(self, con, tmp_path):
        assert self._sniff(con, tmp_path, ["1_000", "2"]) == "VARCHAR"

    def test_nan_literal_stays_varchar(self, con, tmp_path):
        assert self._sniff(con, tmp_path, ["nan", "1.5"]) == "VARCHAR"

    def test_inf_literal_stays_varchar(self, con, tmp_path):
        assert self._sniff(con, tmp_path, ["inf", "-Infinity"]) == "VARCHAR"

    def test_explicit_plus_sign_is_numeric(self, con, tmp_path):
        assert self._sniff(con, tmp_path, ["+5", "-3"]) == "BIGINT"
        con.execute("DROP TABLE strict")
        assert self._sniff(con, tmp_path, ["+5.5", "1e3"]) == "DOUBLE"

    def test_underscored_float_stays_varchar(self, con, tmp_path):
        assert self._sniff(con, tmp_path, ["1_0.5", "2.5"]) == "VARCHAR"
