"""Differential join-semantics tests for the vectorized join pipeline.

The quack hash join now builds and probes through NumPy kernels
(``repro.quack.kernels.JoinBuild``) and the index nested-loop join
batches its probes through ``RTree.search_batch``; the original
row-at-a-time code stays behind ``set_kernels_enabled(False)``.  These
tests pin the join semantics against the pgsim row engine in both
modes: NULL equi-keys never match, duplicate build keys fan out,
LEFT JOIN padding with and without residual predicates, NaN join keys
match each other, ``-0.0`` equals ``0.0``, and the EXPLAIN ANALYZE
counters report kernel-vs-fallback use.
"""

import math
from collections import Counter

import pytest

from repro import core
from repro.pgsim import RowDatabase
from repro.quack import Database
from repro.quack.kernels import JoinBuild, set_kernels_enabled
from repro.quack.types import BIGINT, DOUBLE, VARCHAR
from repro.quack.vector import KernelFallback, Vector


@pytest.fixture(params=[True, False], ids=["kernels", "row-loop"])
def kernels_toggle(request):
    previous = set_kernels_enabled(request.param)
    yield request.param
    set_kernels_enabled(previous)


_L_DDL = "CREATE TABLE l(k INTEGER, v INTEGER)"
_R_DDL = "CREATE TABLE r(k INTEGER, w VARCHAR)"


def _load(factory, left_rows, right_rows, left_ddl=_L_DDL, right_ddl=_R_DDL):
    con = factory().connect()
    con.execute(left_ddl)
    con.execute(right_ddl)
    if left_rows:
        con.database.catalog.get_table("l").append_rows(left_rows)
    if right_rows:
        con.database.catalog.get_table("r").append_rows(right_rows)
    return con


def _agree(left_rows, right_rows, sql, left_ddl=_L_DDL, right_ddl=_R_DDL):
    """Both engines must return the same multiset of rows."""
    duck = _load(Database, left_rows, right_rows,
                 left_ddl, right_ddl).execute(sql).fetchall()
    base = _load(RowDatabase, left_rows, right_rows,
                 left_ddl, right_ddl).execute(sql).fetchall()
    assert Counter(map(repr, duck)) == Counter(map(repr, base)), sql
    return duck


class TestHashJoinSemantics:
    """WHERE-form equi-joins plan as HASH_JOIN (optimizer extraction)."""

    def test_null_keys_never_match(self, kernels_toggle):
        rows = _agree(
            [(1, 10), (None, 20), (2, 30), (None, 40)],
            [(1, "a"), (None, "b"), (None, "c"), (3, "d")],
            "SELECT l.k, l.v, r.w FROM l, r WHERE l.k = r.k",
        )
        # NULL = NULL is not a match: only the k=1 pair survives.
        assert rows == [(1, 10, "a")]

    def test_duplicate_build_keys_fan_out(self, kernels_toggle):
        rows = _agree(
            [(1, 10), (2, 20), (1, 30)],
            [(1, "a"), (1, "b"), (1, "c"), (2, "d")],
            "SELECT l.v, r.w FROM l, r WHERE l.k = r.k",
        )
        # Each k=1 probe row matches all three k=1 build rows.
        assert len(rows) == 7

    def test_multi_column_keys(self, kernels_toggle):
        _agree(
            [(1, 10), (1, 20), (2, 10), (None, 10), (2, None)],
            [(1, "10"), (2, "10"), (1, "20"), (None, "10")],
            "SELECT l.k, l.v, r.w FROM l, r "
            "WHERE l.k = r.k AND l.v = CAST(r.w AS INTEGER)",
        )

    def test_varchar_keys(self, kernels_toggle):
        _agree(
            [("x", 1), ("y", 2), (None, 3), ("z", 4), ("x", 5)],
            [("x", "a"), ("z", "b"), (None, "c"), ("w", "d")],
            "SELECT l.v, r.w FROM l, r WHERE l.k = r.k",
            left_ddl="CREATE TABLE l(k VARCHAR, v INTEGER)",
            right_ddl="CREATE TABLE r(k VARCHAR, w VARCHAR)",
        )

    def test_nan_keys_match_each_other(self, kernels_toggle):
        nan = float("nan")
        rows = _agree(
            [(nan, 1), (2.5, 2), (nan, 3), (None, 4)],
            [(nan, "a"), (2.5, "b"), (None, "c")],
            "SELECT l.v, r.w FROM l, r WHERE l.k = r.k",
            left_ddl="CREATE TABLE l(k DOUBLE, v INTEGER)",
            right_ddl="CREATE TABLE r(k DOUBLE, w VARCHAR)",
        )
        # Both engines canonicalize NaN, so NaN keys join (like GROUP BY).
        assert sorted(rows) == [(1, "a"), (2, "b"), (3, "a")]

    def test_negative_zero_matches_zero(self, kernels_toggle):
        rows = _agree(
            [(-0.0, 1), (0.0, 2)],
            [(0.0, "a"), (-0.0, "b")],
            "SELECT l.v, r.w FROM l, r WHERE l.k = r.k",
            left_ddl="CREATE TABLE l(k DOUBLE, v INTEGER)",
            right_ddl="CREATE TABLE r(k DOUBLE, w VARCHAR)",
        )
        assert len(rows) == 4

    def test_empty_build_side(self, kernels_toggle):
        rows = _agree(
            [(1, 10), (2, 20)],
            [],
            "SELECT l.v, r.w FROM l, r WHERE l.k = r.k",
        )
        assert rows == []

    def test_residual_predicate_on_top_of_keys(self, kernels_toggle):
        _agree(
            [(1, 10), (1, 20), (2, 30)],
            [(1, "a"), (1, "bbb"), (2, "cc")],
            "SELECT l.v, r.w FROM l, r "
            "WHERE l.k = r.k AND l.v < 15 AND r.w <> 'a'",
        )

    def test_many_chunks(self, kernels_toggle):
        # Cross several STANDARD_VECTOR_SIZE boundaries on the probe side.
        left = [(i % 500, i) for i in range(5000)]
        right = [(i, str(i)) for i in range(400)]
        rows = _agree(
            left, right, "SELECT l.k, l.v, r.w FROM l, r WHERE l.k = r.k"
        )
        assert len(rows) == sum(1 for k, _ in left if k < 400)


class TestLeftJoinPadding:
    """LEFT JOIN plans as a nested-loop join; padding must use the
    matched-row masks identically in both engines."""

    def test_padding_without_matches(self, kernels_toggle):
        rows = _agree(
            [(1, 10), (None, 20)],
            [(7, "a")],
            "SELECT l.k, l.v, r.w FROM l LEFT JOIN r ON l.k = r.k",
        )
        assert sorted(rows, key=repr) == sorted(
            [(1, 10, None), (None, 20, None)], key=repr
        )

    def test_padding_with_partial_matches(self, kernels_toggle):
        rows = _agree(
            [(1, 10), (2, 20), (3, 30)],
            [(1, "a"), (1, "b"), (3, "c")],
            "SELECT l.k, l.v, r.w FROM l LEFT JOIN r ON l.k = r.k",
        )
        assert len(rows) == 4  # 1 twice, 3 once, 2 padded

    def test_padding_with_residual_predicate(self, kernels_toggle):
        # The residual disqualifies some equal-key pairs; those left rows
        # must still appear exactly once, padded.
        rows = _agree(
            [(1, 10), (2, 20), (3, 30)],
            [(1, "a"), (2, "zz"), (3, "c")],
            "SELECT l.k, l.v, r.w FROM l LEFT JOIN r "
            "ON l.k = r.k AND r.w < 'm'",
        )
        assert (2, 20, None) in rows and len(rows) == 3

    def test_padding_empty_right(self, kernels_toggle):
        rows = _agree(
            [(1, 10), (2, 20)],
            [],
            "SELECT l.k, l.v, r.w FROM l LEFT JOIN r ON l.k = r.k",
        )
        assert rows == [(1, 10, None), (2, 20, None)]


class TestJoinBuildKernel:
    """Unit tests for the JoinBuild factorize/probe kernel itself."""

    @staticmethod
    def _pairs(build_keys, probe_keys, ltypes):
        def columns(keys):
            if keys:
                return list(zip(*keys))
            return [[] for _ in ltypes]

        build_vectors = [
            Vector.from_values(lt, col)
            for lt, col in zip(ltypes, columns(build_keys))
        ]
        probe_vectors = [
            Vector.from_values(lt, col)
            for lt, col in zip(ltypes, columns(probe_keys))
        ]
        build = JoinBuild(build_vectors, len(build_keys))
        li, ri = build.probe(probe_vectors, len(probe_keys))
        return sorted(zip(li.tolist(), ri.tolist()))

    @staticmethod
    def _expected(build_keys, probe_keys):
        def canon(key):
            out = []
            for part in key:
                if isinstance(part, float) and math.isnan(part):
                    part = "NaN"
                elif isinstance(part, float):
                    part = part + 0.0
                out.append(part)
            return tuple(out)

        pairs = []
        for p, pk in enumerate(probe_keys):
            if any(part is None for part in pk):
                continue
            for b, bk in enumerate(build_keys):
                if any(part is None for part in bk):
                    continue
                if canon(pk) == canon(bk):
                    pairs.append((p, b))
        return sorted(pairs)

    def test_matches_brute_force_bigint(self):
        build = [(1,), (2,), (1,), (None,), (3,)]
        probe = [(1,), (None,), (3,), (4,), (1,)]
        assert self._pairs(build, probe, [BIGINT]) == self._expected(
            build, probe
        )

    def test_matches_brute_force_double_nan(self):
        nan = float("nan")
        build = [(nan,), (0.0,), (-0.0,), (None,), (2.5,)]
        probe = [(nan,), (-0.0,), (2.5,), (None,), (7.0,)]
        assert self._pairs(build, probe, [DOUBLE]) == self._expected(
            build, probe
        )

    def test_matches_brute_force_multi_column(self):
        build = [(1, "x"), (1, "y"), (2, "x"), (None, "x"), (2, None)]
        probe = [(1, "x"), (2, "x"), (1, "z"), (None, "x"), (1, "y")]
        assert self._pairs(
            build, probe, [BIGINT, VARCHAR]
        ) == self._expected(build, probe)

    def test_probe_key_absent_from_build(self):
        assert self._pairs([(1,)], [(99,)], [BIGINT]) == []

    def test_empty_build(self):
        assert self._pairs([], [(1,), (2,)], [BIGINT]) == []

    def test_no_keys_falls_back(self):
        with pytest.raises(KernelFallback):
            JoinBuild([], 0)

    def test_probe_physical_mismatch_falls_back(self):
        build = JoinBuild([Vector.from_values(BIGINT, [1, 2])], 2)
        with pytest.raises(KernelFallback):
            build.probe([Vector.from_values(DOUBLE, [1.0])], 1)


class TestIndexJoinBatch:
    """TRTREE index nested-loop joins must agree between the batched
    probe path and the per-row fallback, and with a plan with no index."""

    @staticmethod
    def _boxes(n, step):
        return [
            (i, f"STBOX X(({i * step},{i * step}),"
                f"({i * step + 5},{i * step + 5}))")
            for i in range(n)
        ]

    def _connect(self, with_index):
        con = core.connect()
        con.execute("CREATE TABLE probe(id INTEGER, box STBOX)")
        con.execute("CREATE TABLE build(id INTEGER, box STBOX)")
        if with_index:
            con.execute("CREATE INDEX bidx ON build USING TRTREE(box)")
        for table, rows in (
            ("probe", self._boxes(40, 3.0)),
            ("build", self._boxes(250, 0.5)),
        ):
            con.database.catalog.get_table(table).append_rows(
                [
                    (i, con.execute(
                        f"SELECT STBOX('{text}')"
                    ).scalar())
                    for i, text in rows
                ]
            )
        return con

    SQL = ("SELECT p.id, b.id FROM probe p, build b "
           "WHERE p.box && b.box ORDER BY 1, 2")

    def test_batched_probe_agrees_with_row_loop_and_scan(self):
        indexed = self._connect(with_index=True)
        plain = self._connect(with_index=False)
        previous = set_kernels_enabled(True)
        try:
            batched = indexed.execute(self.SQL).fetchall()
            set_kernels_enabled(False)
            row_loop = indexed.execute(self.SQL).fetchall()
            unindexed = plain.execute(self.SQL).fetchall()
        finally:
            set_kernels_enabled(previous)
        assert batched == row_loop == unindexed
        assert len(batched) > 0

    def test_batch_counters_visible(self):
        con = self._connect(with_index=True)
        previous = set_kernels_enabled(True)
        try:
            report = con.explain_analyze(self.SQL, format="json")
        finally:
            set_kernels_enabled(previous)
        counters = report["counters"]
        assert counters.get("executor.join_index_batches", 0) >= 1
        assert counters.get("rtree.batch_searches", 0) >= 1
        assert counters.get("rtree.batch_probes", 0) >= 1


class TestJoinCounters:
    """Acceptance: kernel-vs-fallback join counters in EXPLAIN ANALYZE,
    both text and JSON formats."""

    SQL = "SELECT l.v, r.w FROM l, r WHERE l.k = r.k"

    def _con(self):
        return _load(
            Database,
            [(i % 5, i) for i in range(20)],
            [(i, str(i)) for i in range(5)],
        )

    def test_text_format_shows_kernel_stats(self):
        con = self._con()
        previous = set_kernels_enabled(True)
        try:
            plan = con.execute(
                "EXPLAIN ANALYZE " + self.SQL
            ).fetchall()[0][0]
        finally:
            set_kernels_enabled(previous)
        join_line = next(
            line for line in plan.splitlines() if "HASH_JOIN" in line
        )
        assert "kernel=" in join_line and "fallback=" in join_line
        assert "executor.join_kernel_probes" in plan

    def test_json_format_counts_kernel_use(self):
        con = self._con()
        previous = set_kernels_enabled(True)
        try:
            report = con.explain_analyze(self.SQL, format="json")
        finally:
            set_kernels_enabled(previous)
        counters = report["counters"]
        assert counters["executor.join_kernel_builds"] == 1
        assert counters.get("executor.join_fallback_builds", 0) == 0
        assert counters["executor.join_kernel_probes"] >= 1
        assert counters.get("executor.join_fallback_probes", 0) == 0
        assert counters["executor.join_build_rows"] == 5
        assert counters["executor.join_probe_rows"] == 20

    def test_json_format_counts_fallback_use(self):
        con = self._con()
        previous = set_kernels_enabled(False)
        try:
            report = con.explain_analyze(self.SQL, format="json")
        finally:
            set_kernels_enabled(previous)
        counters = report["counters"]
        assert counters.get("executor.join_kernel_builds", 0) == 0
        assert counters["executor.join_fallback_builds"] == 1
        assert counters["executor.join_fallback_probes"] >= 1


class TestStboxPredicateKernels:
    """Columnar stbox predicate kernels must agree with the scalar path
    and with the pgsim baseline engine."""

    @staticmethod
    def _fill(con, n=120):
        con.execute("CREATE TABLE g(id INTEGER, box STBOX)")
        boxes = []
        for i in range(n):
            x = (i * 7) % 50
            t0 = 1 + (i % 9)
            boxes.append(
                (i, f"STBOX XT(((${x}$,{x}),({x + 4},{x + 4})),"
                    f"[2020-01-0{t0}, 2020-01-0{min(t0 + 1, 9)}])"
                    .replace("$", ""))
            )
        for i, text in boxes:
            con.execute(
                f"INSERT INTO g VALUES ({i}, STBOX('{text}'))"
            )

    @pytest.mark.parametrize("op", ["&&", "@>", "<@"])
    def test_kernel_matches_scalar_and_baseline(self, op):
        probe = ("STBOX XT(((10,10),(30,30)),"
                 "[2020-01-03, 2020-01-05])")
        sql = (f"SELECT id FROM g WHERE box {op} "
               f"STBOX('{probe}') ORDER BY id")
        results = {}
        for mode in (True, False):
            con = core.connect()
            self._fill(con)
            previous = set_kernels_enabled(mode)
            try:
                results[mode] = con.execute(sql).fetchall()
            finally:
                set_kernels_enabled(previous)
        baseline = core.connect_baseline()
        self._fill(baseline)
        results["baseline"] = baseline.execute(sql).fetchall()
        assert results[True] == results[False] == results["baseline"]

    def test_bbox_counters_recorded(self):
        con = core.connect()
        self._fill(con)
        previous = set_kernels_enabled(True)
        try:
            report = con.explain_analyze(
                "SELECT count(*) FROM g WHERE box && "
                "STBOX('STBOX X((10,10),(30,30))')",
                format="json",
            )
        finally:
            set_kernels_enabled(previous)
        counters = report["counters"]
        assert counters.get("quack.function_batch_ops", 0) >= 1
        assert counters.get("quack.bbox_rows_decided", 0) >= 1
