"""Vectorized aggregation/sort/distinct kernels and their fallbacks.

Covers the NumPy kernel paths against the row-loop paths they replaced:
NaN/negative-zero group canonicalization, the typed unhashable-key
fallback, kernel-vs-fallback parity, stable sorting, and the EXPLAIN
ANALYZE kernel counters.
"""

import math

import pytest

from repro.quack import Database
from repro.quack.extension import ExtensionUtil, make_user_type
from repro.quack.functions import AggregateFunction
from repro.quack.kernels import hashable_key, set_kernels_enabled
from repro.quack.types import DOUBLE


@pytest.fixture(params=[True, False], ids=["kernels", "row-loop"])
def kernels_toggle(request):
    previous = set_kernels_enabled(request.param)
    yield request.param
    set_kernels_enabled(previous)


def _connect():
    con = Database().connect()
    con.execute("CREATE TABLE t(g INTEGER, x DOUBLE, s VARCHAR)")
    return con


def _append(con, rows):
    con.database.catalog.get_table("t").append_rows(rows)


class TestNaNGroups:
    def test_nan_keys_form_one_group(self, kernels_toggle):
        con = _connect()
        # Two NaN payloads plus regular keys; NaN != NaN in Python, so the
        # old dict-of-groups path opened a fresh group per NaN row.
        _append(con, [
            (1, float("nan"), "a"),
            (1, float("nan"), "b"),
            (1, 1.5, "c"),
            (1, float("nan"), "d"),
        ])
        rows = con.execute(
            "SELECT x, count(*) FROM t GROUP BY x"
        ).fetchall()
        assert len(rows) == 2
        counts = {repr(x): n for x, n in rows}
        assert counts["nan"] == 3
        assert counts["1.5"] == 1

    def test_negative_zero_merges_with_zero(self, kernels_toggle):
        con = _connect()
        _append(con, [(1, -0.0, "a"), (1, 0.0, "b"), (1, 1.0, "c")])
        rows = con.execute(
            "SELECT x, count(*) FROM t GROUP BY x"
        ).fetchall()
        assert sorted(n for _, n in rows) == [1, 2]

    def test_nan_distinct(self, kernels_toggle):
        con = _connect()
        _append(con, [
            (1, float("nan"), None),
            (2, float("nan"), None),
            (3, 2.0, None),
        ])
        rows = con.execute("SELECT DISTINCT x FROM t").fetchall()
        assert len(rows) == 2

    def test_min_max_with_nan(self, kernels_toggle):
        con = _connect()
        # DuckDB treats NaN as the greatest DOUBLE: max picks it up,
        # min ignores it unless every value is NaN.
        _append(con, [(1, 1.0, None), (1, float("nan"), None),
                      (2, float("nan"), None)])
        rows = con.execute(
            "SELECT g, min(x), max(x) FROM t GROUP BY g ORDER BY g"
        ).fetchall()
        assert rows[0][1] == 1.0
        assert math.isnan(rows[0][2])
        assert math.isnan(rows[1][1]) and math.isnan(rows[1][2])


class TestHashableKey:
    def test_nan_canonicalized(self):
        assert hashable_key(float("nan")) == hashable_key(float("nan"))
        assert hashable_key(float("nan")) != hashable_key(1.0)

    def test_negative_zero_canonicalized(self):
        assert hashable_key(-0.0) == hashable_key(0.0)
        assert repr(hashable_key(-0.0)) == "0.0"

    def test_containers_recurse(self):
        assert hashable_key([1, [2, 3]]) == (1, (2, 3))
        assert hashable_key({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_unhashable_fallback_includes_type(self):
        class Payload:
            def __init__(self, v):
                self.v = v

            def __eq__(self, other):  # defines __eq__ -> unhashable
                return type(other) is type(self) and other.v == self.v

            def __repr__(self):
                return f"<payload {self.v}>"

        class Impostor(Payload):
            pass

        # Same repr, different type: must not collide.
        assert repr(Payload(1)) == repr(Impostor(1))
        assert hashable_key(Payload(1)) != hashable_key(Impostor(1))
        assert hashable_key(Payload(1)) == hashable_key(Payload(1))


class _Span:
    """An unhashable extension payload (defines __eq__, no __hash__)."""

    def __init__(self, lo, hi):
        self.lo, self.hi = lo, hi

    def __eq__(self, other):
        return (type(other) is _Span and other.lo == self.lo
                and other.hi == self.hi)

    def __repr__(self):
        return f"SPAN({self.lo}, {self.hi})"


class TestExtensionTypeGrouping:
    def test_distinct_and_group_by_on_unhashable_type(self, kernels_toggle):
        db = Database()
        span_type = make_user_type("SPAN", _Span)
        ExtensionUtil.register_type(db, "SPAN", span_type)
        con = db.connect()
        con.execute("CREATE TABLE spans(s SPAN)")
        con.database.catalog.get_table("spans").append_rows(
            [(_Span(0, 1),), (_Span(0, 1),), (_Span(2, 3),)]
        )
        assert len(con.execute(
            "SELECT DISTINCT s FROM spans").fetchall()) == 2
        rows = con.execute(
            "SELECT s, count(*) FROM spans GROUP BY s").fetchall()
        assert sorted(n for _, n in rows) == [1, 2]


class TestKernelParity:
    QUERIES = [
        "SELECT g, count(*), count(x), sum(x), min(x), max(x), avg(x) "
        "FROM t GROUP BY g",
        "SELECT count(*), sum(g), avg(x) FROM t",
        "SELECT DISTINCT g, s FROM t",
        "SELECT g, x, s FROM t ORDER BY g DESC NULLS LAST, x ASC, s",
        "SELECT g, count(DISTINCT s) FROM t GROUP BY g",
        "SELECT s, string_agg(s, '|') FROM t GROUP BY s",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_results_with_kernels_on_and_off(self, sql):
        rows = [
            (1, 1.5, "a"), (1, float("nan"), "b"), (2, -0.0, "a"),
            (2, 0.0, None), (None, 4.0, "c"), (1, None, "a"),
            (3, 2.5, "b"), (None, float("nan"), None),
        ]

        def run():
            con = _connect()
            _append(con, rows)
            return [repr(r) for r in con.execute(sql).fetchall()]

        previous = set_kernels_enabled(True)
        try:
            vectorized = run()
            set_kernels_enabled(False)
            row_loop = run()
        finally:
            set_kernels_enabled(previous)
        assert vectorized == row_loop, sql

    def test_integer_sum_stays_exact(self, kernels_toggle):
        con = Database().connect()
        con.execute("CREATE TABLE big(v BIGINT)")
        con.database.catalog.get_table("big").append_rows(
            [(2**53,), (1,), (1,)]
        )
        # float64 would round 2**53 + 1 back to 2**53.
        assert con.execute("SELECT sum(v) FROM big").fetchall() == [
            (2**53 + 2,)
        ]


class TestStableSort:
    def test_equal_keys_preserve_input_order(self, kernels_toggle):
        con = Database().connect()
        con.execute("CREATE TABLE seq(k INTEGER, pos INTEGER)")
        rows = [(i % 3, i) for i in range(50)]
        con.database.catalog.get_table("seq").append_rows(rows)
        out = con.execute("SELECT k, pos FROM seq ORDER BY k").fetchall()
        for k in range(3):
            positions = [pos for kk, pos in out if kk == k]
            assert positions == sorted(positions)


class TestExplainAnalyzeCounters:
    def test_kernel_counters_reported(self):
        con = _connect()
        _append(con, [(i % 4, float(i), "s") for i in range(100)])
        plan = con.execute(
            "EXPLAIN ANALYZE SELECT g, sum(x), avg(x) FROM t "
            "GROUP BY g ORDER BY g"
        ).fetchall()[0][0]
        group_line = next(l for l in plan.splitlines() if "GROUP_BY" in l)
        sort_line = next(l for l in plan.splitlines() if "ORDER_BY" in l)
        assert "rows_in=100" in group_line
        assert "kernel=2" in group_line and "fallback=0" in group_line
        assert "kernel=1" in sort_line and "fallback=0" in sort_line

    def test_custom_aggregate_counts_as_fallback(self):
        db = Database()
        ExtensionUtil.register_aggregate_function(db, AggregateFunction(
            name="sumsq",
            arg_types=(DOUBLE,),
            return_type=DOUBLE,
            init=lambda: None,
            step=lambda s, v: v * v if s is None else s + v * v,
            final=lambda s: s,
        ))
        con = db.connect()
        con.execute("CREATE TABLE t(g INTEGER, x DOUBLE, s VARCHAR)")
        _append(con, [(i % 2, float(i), None) for i in range(10)])
        plan = con.execute(
            "EXPLAIN ANALYZE SELECT g, sum(x), sumsq(x) FROM t GROUP BY g"
        ).fetchall()[0][0]
        group_line = next(l for l in plan.splitlines() if "GROUP_BY" in l)
        # Builtin sum runs in the kernel; the extension aggregate has no
        # step_batch and takes the row loop.
        assert "kernel=1" in group_line and "fallback=1" in group_line
        assert con.execute(
            "SELECT sumsq(x) FROM t WHERE g = 0"
        ).fetchall() == [(0.0 + 4.0 + 16.0 + 36.0 + 64.0,)]

    def test_distinct_aggregate_counts_as_fallback(self):
        con = _connect()
        _append(con, [(1, 1.0, "a"), (1, 1.0, "b"), (2, 2.0, "a")])
        plan = con.execute(
            "EXPLAIN ANALYZE SELECT g, count(DISTINCT s) FROM t GROUP BY g"
        ).fetchall()[0][0]
        group_line = next(l for l in plan.splitlines() if "GROUP_BY" in l)
        assert "fallback=1" in group_line
