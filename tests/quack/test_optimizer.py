"""Optimizer tests: filter pushdown, hash-join extraction, index injection."""

import pytest

from repro import core
from repro.quack import Database


@pytest.fixture
def con():
    db = Database()
    con = db.connect()
    con.execute("CREATE TABLE a(x INTEGER, y INTEGER)")
    con.execute("CREATE TABLE b(x INTEGER, z INTEGER)")
    con.execute("INSERT INTO a VALUES (1, 10), (2, 20)")
    con.execute("INSERT INTO b VALUES (1, 100), (3, 300)")
    return con


class TestPushdownAndJoins:
    def test_equi_condition_becomes_hash_join(self, con):
        plan = con.explain("SELECT * FROM a, b WHERE a.x = b.x")
        assert "HASH_JOIN" in plan
        assert "CROSS_PRODUCT" not in plan

    def test_single_table_filter_pushed_below_join(self, con):
        plan = con.explain(
            "SELECT * FROM a, b WHERE a.x = b.x AND a.y > 5"
        )
        join_pos = plan.index("HASH_JOIN")
        filter_pos = plan.index("FILTER")
        assert filter_pos > join_pos  # below the join in the tree

    def test_non_equi_residual(self, con):
        plan = con.explain("SELECT * FROM a, b WHERE a.x < b.x")
        assert "NESTED_LOOP_JOIN" in plan

    def test_pure_cross_product(self, con):
        plan = con.explain("SELECT * FROM a, b")
        assert "CROSS_PRODUCT" in plan

    def test_results_match_unoptimized_semantics(self, con):
        rows = con.execute(
            "SELECT a.y, b.z FROM a, b WHERE a.x = b.x AND b.z > 50"
        ).fetchall()
        assert rows == [(10, 100)]


class TestIndexInjection:
    """Paper §4.3: seq scans replaced by TRTREE index scans."""

    @pytest.fixture
    def indexed(self):
        con = core.connect()
        con.execute("CREATE TABLE geo(id INTEGER, box STBOX)")
        con.execute("CREATE INDEX rt ON geo USING TRTREE(box)")
        con.execute(
            "INSERT INTO geo SELECT i, ('STBOX X((' || i || ',' || i ||"
            " '),(' || (i + 1) || ',' || (i + 1) || '))')"
            " FROM generate_series(1, 200) AS t(i)"
        )
        return con

    def test_overlap_predicate_uses_index(self, indexed):
        plan = indexed.explain(
            "SELECT * FROM geo WHERE box && "
            "stbox('STBOX X((50,50),(60,60))')"
        )
        assert "TRTREE_INDEX_SCAN" in plan
        assert "SEQ_SCAN" not in plan

    def test_commuted_operand_order(self, indexed):
        plan = indexed.explain(
            "SELECT * FROM geo WHERE "
            "stbox('STBOX X((50,50),(60,60))') && box"
        )
        assert "TRTREE_INDEX_SCAN" in plan

    def test_results_equal_seq_scan(self, indexed):
        query = ("SELECT id FROM geo WHERE box && "
                 "stbox('STBOX X((50,50),(60,60))') ORDER BY id")
        with_index = indexed.execute(query).fetchall()

        plain = core.connect()
        plain.execute("CREATE TABLE geo(id INTEGER, box STBOX)")
        plain.execute(
            "INSERT INTO geo SELECT i, ('STBOX X((' || i || ',' || i ||"
            " '),(' || (i + 1) || ',' || (i + 1) || '))')"
            " FROM generate_series(1, 200) AS t(i)"
        )
        without_index = plain.execute(query).fetchall()
        assert with_index == without_index
        # Box i spans [i, i+1]; [50, 60] touches boxes 49 through 60.
        assert len(with_index) == 12

    def test_non_indexed_column_keeps_seq_scan(self, indexed):
        plan = indexed.explain("SELECT * FROM geo WHERE id = 5")
        assert "SEQ_SCAN" in plan

    def test_non_constant_predicate_keeps_seq_scan(self, indexed):
        plan = indexed.explain(
            "SELECT * FROM geo g1, geo g2 WHERE g1.box && g2.box"
        )
        # No constant operand: scan-level injection does not apply, but the
        # join may still use the index as an index NL join.
        assert "SEQ_SCAN" in plan or "INDEX_NL_JOIN" in plan

    def test_index_nl_join(self, indexed):
        plan = indexed.explain(
            "SELECT count(*) FROM geo g1, geo g2 WHERE g1.box && g2.box"
        )
        assert "INDEX_NL_JOIN" in plan
        got = indexed.execute(
            "SELECT count(*) FROM geo g1, geo g2 WHERE g1.box && g2.box"
        ).scalar()
        # Each unit box overlaps itself and its two neighbours (touching).
        assert got == 200 + 2 * 199

    def test_figure1_plan_shape(self, indexed):
        """Figure 1: PROJECTION over FILTER over TRTREE index scan."""
        plan = indexed.explain(
            "SELECT * FROM geo WHERE box && "
            "stbox('STBOX X((50,50),(60,60))')"
        )
        lines = [line.strip() for line in plan.splitlines()]
        assert lines[0].startswith("PROJECTION")
        assert any(line.startswith("FILTER") for line in lines)
        assert lines[-1].startswith("TRTREE_INDEX_SCAN")
