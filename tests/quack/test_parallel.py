"""Morsel-driven parallel execution: differential, counters, and the
concurrency-bug regression battery.

Every parallel plan must return exactly the serial answer — the
differential tests run each query at ``workers=1`` and ``workers=4`` on
the same database and compare row lists.  The regression classes pin the
four races the parallel work surfaced: the shared subquery cache, the
``Vector._aux`` lazy memos, contextvar stats propagation into pool
threads, and the mutable ``KERNELS_ENABLED`` flag.

Note on plan shapes: the optimizer only extracts hash-join equi keys
from comma-join ``WHERE`` conjuncts (``FROM a, b WHERE a.k = b.k``);
``JOIN ... ON`` stays a nested-loop join.  The join tests use the comma
form on purpose so the partitioned parallel build is actually exercised.
"""

import threading

import pytest

from repro.quack import Database, QuackError
from repro.quack.kernels import (
    kernels_enabled,
    kernels_snapshot,
    set_kernels_enabled,
)
from repro.quack.parallel import morsel_ranges
from repro.quack.types import DOUBLE
from repro.quack.vector import Vector

ROWS = 10_000  # comfortably above MIN_PARALLEL_ROWS (4096)


@pytest.fixture(scope="module")
def db():
    db = Database()
    con = db.connect()
    con.execute("CREATE TABLE big(i BIGINT, g INTEGER, x DOUBLE, s VARCHAR)")
    # x = i * 0.5 is float-exact, so parallel partial sums match the
    # serial sum bit-for-bit instead of merely within tolerance.
    con.execute(
        "INSERT INTO big "
        "SELECT i, i % 7, i * 0.5, "
        "       CASE WHEN i % 97 = 0 THEN NULL ELSE 'grp' || (i % 5) END "
        f"FROM generate_series(1, {ROWS}) AS t(i)"
    )
    con.execute("CREATE TABLE dim(k INTEGER, name VARCHAR)")
    # 6000 build rows (>= MIN_PARALLEL_ROWS) with NULL keys sprinkled in.
    con.execute(
        "INSERT INTO dim "
        "SELECT CASE WHEN i % 53 = 0 THEN NULL ELSE i % 500 END, "
        "       'name' || i "
        "FROM generate_series(1, 6000) AS t(i)"
    )
    return db


@pytest.fixture(scope="module")
def serial_con(db):
    return db.connect(workers=1)  # explicit: immune to REPRO_THREADS


@pytest.fixture(scope="module")
def par_con(db):
    con = db.connect(workers=4)
    yield con
    con.close()


def both(serial_con, par_con, sql):
    return (
        serial_con.execute(sql).fetchall(),
        par_con.execute(sql).fetchall(),
    )


class TestDifferential:
    """workers=4 must produce exactly the workers=1 answer."""

    @pytest.mark.parametrize("sql", [
        # streaming fragment: scan -> filter -> project
        "SELECT i, x + 1.0, g FROM big WHERE i % 3 = 0 AND x < 4000.0",
        "SELECT i FROM big WHERE s IS NULL",
        # combinable aggregates (count/sum/min/max), grouped and global
        "SELECT g, count(*), sum(i), sum(x), min(x), max(i) "
        "FROM big GROUP BY g ORDER BY g",
        "SELECT count(*), sum(x), min(i), max(x) FROM big",
        "SELECT s, count(*), sum(i) FROM big GROUP BY s ORDER BY s",
        # non-combinable aggregates: concat-then-reduce fallback
        "SELECT g, avg(x), string_agg(s, ',') FROM big "
        "WHERE i <= 5000 GROUP BY g ORDER BY g",
        "SELECT g, count(DISTINCT s) FROM big GROUP BY g ORDER BY g",
        # parallel sort: multi-key, DESC, NULLS FIRST
        "SELECT s, i FROM big ORDER BY s NULLS FIRST, i DESC",
        "SELECT x FROM big ORDER BY x DESC LIMIT 17",
        # DISTINCT stays serial but rides the parallel scan below it
        "SELECT DISTINCT g, s FROM big ORDER BY g, s",
        # hash join, comma form (partitioned parallel build; NULL keys
        # on both sides never match)
        "SELECT count(*), sum(b.i) FROM big b, dim d "
        "WHERE b.g = d.k",
        "SELECT d.name, count(*) FROM big b, dim d "
        "WHERE b.g = d.k AND b.i % 11 = 0 GROUP BY d.name ORDER BY d.name",
        # nested-loop join path (JOIN ... ON keeps the NL plan)
        "SELECT count(*) FROM big b LEFT JOIN dim d ON b.g = d.k "
        "WHERE b.i <= 200",
        # CTE (materialized once, under the lock) fanned into a join
        "WITH hot AS (SELECT g, sum(x) AS tot FROM big GROUP BY g) "
        "SELECT b.g, h.tot FROM big b, hot h "
        "WHERE b.g = h.g AND b.i <= 50 ORDER BY b.i",
        # set operation over two parallel-eligible arms
        "SELECT g FROM big WHERE i <= 5000 "
        "EXCEPT SELECT g FROM big WHERE i > 9990",
    ])
    def test_matches_serial(self, serial_con, par_con, sql):
        serial, par = both(serial_con, par_con, sql)
        assert par == serial

    def test_unordered_multiset(self, serial_con, par_con):
        sql = "SELECT i, x FROM big WHERE g = 3"
        serial, par = both(serial_con, par_con, sql)
        assert sorted(par) == sorted(serial)

    def test_whole_table_group_count(self, par_con):
        rows = par_con.execute(
            "SELECT g, count(*) FROM big GROUP BY g ORDER BY g"
        ).fetchall()
        assert sum(r[1] for r in rows) == ROWS


class TestSubqueryCache:
    """Satellite 1: the shared subquery cache is read/published under a
    lock; a correlated subquery at workers=4 must match serial."""

    def test_correlated_subquery(self, serial_con, par_con):
        sql = (
            "SELECT g, (SELECT count(*) FROM dim d WHERE d.k = b.g) "
            "FROM big b WHERE i <= 4500 ORDER BY i"
        )
        serial, par = both(serial_con, par_con, sql)
        assert par == serial

    def test_uncorrelated_scalar_subquery(self, serial_con, par_con):
        sql = (
            "SELECT i FROM big WHERE x > (SELECT avg(x) FROM big) "
            "ORDER BY i LIMIT 13"
        )
        serial, par = both(serial_con, par_con, sql)
        assert par == serial


class TestCounters:
    """Satellite 3: worker-local stats merge into the query's stats."""

    def test_parallel_counters_fire(self, par_con):
        par_con.execute("SELECT i FROM big WHERE i % 2 = 0")
        counters = par_con.last_query_stats.counters
        assert counters["parallel.batches"] >= 1
        assert counters["parallel.morsels"] >= 2
        assert par_con.last_query_stats.gauges["parallel.workers"] == 4

    def test_partitioned_build_fires(self, par_con):
        par_con.execute(
            "SELECT count(*) FROM big b, dim d WHERE b.g = d.k"
        )
        counters = par_con.last_query_stats.counters
        assert counters["parallel.build_partitions"] >= 2

    def test_aggregate_partials_fire(self, par_con):
        par_con.execute("SELECT g, sum(i) FROM big GROUP BY g")
        assert par_con.last_query_stats.counters["parallel.agg_partials"] >= 1

    def test_sort_runs_fire(self, par_con):
        par_con.execute("SELECT i FROM big ORDER BY x DESC")
        assert par_con.last_query_stats.counters["parallel.sort_runs"] >= 2

    def test_counter_parity_with_serial(self, serial_con, par_con):
        """A streaming fragment bumps exactly the serial counters — the
        worker-local stats objects must merge without losing or double
        counting anything; only the parallel.* family (and the
        observability-recording trace./querylog. counters, which track
        timeline events that exist only when morsels scatter) is new."""
        meta = ("parallel.", "trace.", "querylog.")
        sql = "SELECT i + 1, x FROM big WHERE i % 5 = 0"
        serial_con.execute(sql)
        serial = {
            k: v
            for k, v in serial_con.last_query_stats.counters.items()
            if not k.startswith(meta)
        }
        par_con.execute(sql)
        par = dict(par_con.last_query_stats.counters)
        par_only = {
            k: v for k, v in par.items() if k.startswith("parallel.")
        }
        assert par_only  # the parallel path actually ran
        assert {
            k: v for k, v in par.items() if not k.startswith(meta)
        } == serial

    def test_serial_connection_has_no_parallel_counters(self, serial_con):
        serial_con.execute("SELECT i FROM big WHERE i % 2 = 0")
        counters = serial_con.last_query_stats.counters
        assert not any(k.startswith("parallel.") for k in counters)


class TestSetThreads:
    def test_set_threads_switches_modes(self, db):
        con = db.connect(workers=1)
        try:
            con.execute("SET threads = 4")
            con.execute("SELECT i FROM big WHERE i % 2 = 0")
            assert con.last_query_stats.counters["parallel.batches"] >= 1
            con.execute("SET threads TO 1")
            con.execute("SELECT i FROM big WHERE i % 2 = 0")
            assert "parallel.batches" not in con.last_query_stats.counters
        finally:
            con.close()

    def test_results_stable_across_switch(self, db):
        con = db.connect()
        try:
            sql = "SELECT g, sum(i) FROM big GROUP BY g ORDER BY g"
            before = con.execute(sql).fetchall()
            con.execute("SET threads = 8")
            assert con.execute(sql).fetchall() == before
            con.execute("SET threads = 1")
            assert con.execute(sql).fetchall() == before
        finally:
            con.close()

    @pytest.mark.parametrize("sql", [
        "SET threads = 0",
        "SET threads = -2",
        "SET threads = 'lots'",
        "SET threads = NULL",
        "SET nonsense = 4",
    ])
    def test_bad_set_rejected(self, db, sql):
        con = db.connect()
        with pytest.raises(QuackError):
            con.execute(sql)


class TestKernelFlagSnapshot:
    """Satellite 4: each statement snapshots KERNELS_ENABLED once."""

    def test_snapshot_freezes_flag(self):
        assert kernels_enabled() is True
        with kernels_snapshot():
            set_kernels_enabled(False)
            try:
                # the running "query" keeps its snapshot...
                assert kernels_enabled() is True
            finally:
                set_kernels_enabled(True)
        assert kernels_enabled() is True

    def test_flag_churn_during_queries(self, db):
        """Flipping the global mid-flight must never change answers: the
        per-statement snapshot keeps one query on one path."""
        con = db.connect(workers=4)
        expected = con.execute(
            "SELECT g, count(*), sum(i) FROM big GROUP BY g ORDER BY g"
        ).fetchall()
        stop = threading.Event()

        def churn():
            flag = False
            while not stop.is_set():
                set_kernels_enabled(flag)
                flag = not flag

        flipper = threading.Thread(target=churn)
        flipper.start()
        try:
            for _ in range(10):
                got = con.execute(
                    "SELECT g, count(*), sum(i) FROM big "
                    "GROUP BY g ORDER BY g"
                ).fetchall()
                assert got == expected
        finally:
            stop.set()
            flipper.join()
            set_kernels_enabled(True)
            con.close()


class TestAuxPublish:
    """Satellite 2: Vector._aux memos publish atomically — every thread
    sees the same built object, losers discard theirs."""

    def test_concurrent_cached_aux_single_object(self):
        vec = Vector.from_values(DOUBLE, [float(i) for i in range(4096)])
        builds = []
        results = [None] * 8
        barrier = threading.Barrier(8)

        def builder(v):
            token = object()
            builds.append(token)
            return token

        def hit(slot):
            barrier.wait()
            results[slot] = vec.cached_aux("view", builder)

        threads = [
            threading.Thread(target=hit, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Several threads may have *built*, but exactly one object was
        # published and everyone got it.
        assert len(set(map(id, results))) == 1
        assert results[0] in builds
        # Later hits keep returning the published object.
        assert vec.cached_aux("view", builder) is results[0]


class TestSealRace:
    """ColumnData.seal under concurrent readers: the tail must seal into
    exactly one segment, never two."""

    def test_concurrent_seal_single_segment(self, db):
        con = db.connect()
        con.execute("CREATE TABLE sealme(a BIGINT)")
        table = db.catalog.get_table("sealme")
        try:
            # 1000 rows < STANDARD_VECTOR_SIZE: everything stays in the
            # unsealed tail until a reader forces a seal.
            table.append_rows([(i,) for i in range(1000)])
            column = table._columns[0]
            barrier = threading.Barrier(8)

            def reader():
                barrier.wait()
                column.seal()

            threads = [
                threading.Thread(target=reader) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(column.segments) == 1
            assert len(column) == 1000
            assert con.execute(
                "SELECT count(*), sum(a) FROM sealme"
            ).fetchall() == [(1000, sum(range(1000)))]
        finally:
            con.execute("DROP TABLE sealme")


class TestSoak:
    """Client threads sharing one workers=4 connection: every query must
    return its own correct answer (stats are contextvar-ambient, so the
    interleaved executions never cross-contaminate)."""

    def test_shared_connection_soak(self, db):
        con = db.connect(workers=4)
        errors = []
        cases = [
            ("SELECT count(*) FROM big WHERE i % 3 = 0", [(ROWS // 3,)]),
            ("SELECT g, count(*) FROM big GROUP BY g ORDER BY g",
             None),  # filled below
            ("SELECT count(*) FROM big b, dim d WHERE b.g = d.k",
             None),
        ]
        cases = [
            (sql, expected if expected is not None
             else con.execute(sql).fetchall())
            for sql, expected in cases
        ]

        def client(case_index):
            sql, expected = cases[case_index % len(cases)]
            try:
                for _ in range(6):
                    got = con.execute(sql).fetchall()
                    if got != expected:
                        errors.append((sql, got))
                        return
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append((sql, repr(exc)))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        con.close()
        assert errors == []


class TestMorselRanges:
    def test_covers_input_exactly(self):
        ranges = morsel_ranges(10_000, workers=4, min_rows=1024)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10_000
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start
        assert 2 <= len(ranges) <= 8

    def test_small_input_single_range(self):
        assert morsel_ranges(100, workers=4, min_rows=1024) == [(0, 100)]

    def test_min_rows_caps_split(self):
        ranges = morsel_ranges(2048, workers=4, min_rows=1024)
        assert len(ranges) == 2
        assert all(end - start >= 1024 for start, end in ranges)
