"""Database save/load persistence tests."""

import os

import pytest

from repro import core
from repro.quack import Database, QuackError


class TestPersistence:
    def test_round_trip_plain_tables(self, tmp_path):
        path = str(tmp_path / "db.qdb")
        db = Database()
        con = db.connect()
        con.execute("CREATE TABLE t(a INTEGER, b VARCHAR)")
        con.execute("INSERT INTO t VALUES (1, 'x'), (2, NULL)")
        assert db.save(path) == 1

        fresh = Database()
        assert fresh.load(path) == 1
        rows = fresh.connect().execute(
            "SELECT a, b FROM t ORDER BY a"
        ).fetchall()
        assert rows == [(1, "x"), (2, None)]

    def test_round_trip_extension_types(self, tmp_path):
        path = str(tmp_path / "db.qdb")
        con = core.connect()
        con.execute("CREATE TABLE trips(id INTEGER, trip TGEOMPOINT)")
        con.execute(
            "INSERT INTO trips VALUES "
            "(1, '[Point(0 0)@2025-01-01, Point(3 4)@2025-01-02]')"
        )
        con.database.save(path)

        fresh = core.connect()
        fresh.database.load(path)
        assert fresh.execute(
            "SELECT length(trip) FROM trips"
        ).scalar() == 5.0

    def test_indexes_rebuilt_on_load(self, tmp_path):
        path = str(tmp_path / "db.qdb")
        con = core.connect()
        con.execute("CREATE TABLE g(box STBOX)")
        con.execute("CREATE INDEX rt ON g USING TRTREE(box)")
        con.execute(
            "INSERT INTO g SELECT ('STBOX X((' || i || ',' || i || '),("
            " ' || (i + 1) || ',' || (i + 1) || '))') "
            "FROM generate_series(1, 100) AS t(i)"
        )
        con.database.save(path)

        fresh = core.connect()
        fresh.database.load(path)
        query = ("SELECT count(*) FROM g WHERE box && "
                 "stbox('STBOX X((10,10),(20,20))')")
        assert "TRTREE_INDEX_SCAN" in fresh.explain(query)
        assert fresh.execute(query).scalar() == 12

    def test_deleted_rows_not_persisted(self, tmp_path):
        path = str(tmp_path / "db.qdb")
        db = Database()
        con = db.connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3)")
        con.execute("DELETE FROM t WHERE a = 2")
        db.save(path)

        fresh = Database()
        fresh.load(path)
        rows = fresh.connect().execute("SELECT a FROM t ORDER BY a")
        assert [r[0] for r in rows] == [1, 3]

    def test_load_replaces_existing_table(self, tmp_path):
        path = str(tmp_path / "db.qdb")
        db = Database()
        con = db.connect()
        con.execute("CREATE TABLE t(a INTEGER)")
        con.execute("INSERT INTO t VALUES (1)")
        db.save(path)
        con.execute("INSERT INTO t VALUES (2)")
        db.load(path)
        assert con.execute("SELECT count(*) FROM t").scalar() == 1

    def test_garbage_file_rejected(self, tmp_path):
        path = str(tmp_path / "garbage.qdb")
        with open(path, "wb") as handle:
            handle.write(b"not a database")
        with pytest.raises(QuackError):
            Database().load(path)

    def test_wrong_pickle_rejected(self, tmp_path):
        import pickle

        path = str(tmp_path / "other.qdb")
        with open(path, "wb") as handle:
            pickle.dump({"something": "else"}, handle)
        with pytest.raises(QuackError):
            Database().load(path)
