"""EXPLAIN ANALYZE / plan profiler tests."""

import pytest

from repro import core
from repro.quack import Database


@pytest.fixture
def con():
    con = Database().connect()
    con.execute("CREATE TABLE t(a INTEGER, b VARCHAR)")
    con.execute(
        "INSERT INTO t SELECT i, 'r' || i FROM "
        "generate_series(1, 1000) AS g(i)"
    )
    return con


class TestExplainAnalyze:
    def test_row_counts_annotated(self, con):
        text = con.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM t WHERE a <= 100"
        ).plan_text
        assert "SEQ_SCAN t [zonemap: a <=]  (rows=1000" in text
        assert "FILTER  (rows=100" in text

    def test_timings_present(self, con):
        text = con.execute(
            "EXPLAIN ANALYZE SELECT a FROM t ORDER BY a LIMIT 5"
        ).plan_text
        assert "ms)" in text
        assert "ORDER_BY" in text

    def test_plain_explain_unchanged(self, con):
        text = con.execute("EXPLAIN SELECT a FROM t").plan_text
        assert "rows=" not in text

    def test_join_counts(self, con):
        con.execute("CREATE TABLE s(a INTEGER)")
        con.execute("INSERT INTO s VALUES (1), (2)")
        text = con.execute(
            "EXPLAIN ANALYZE SELECT * FROM t, s WHERE t.a = s.a"
        ).plan_text
        assert "HASH_JOIN" in text
        assert "(rows=2" in text

    def test_limit_short_circuit_visible(self, con):
        text = con.execute(
            "EXPLAIN ANALYZE SELECT a FROM t LIMIT 3"
        ).plan_text
        # The LIMIT row count is exactly 3 even though the scan holds 1000.
        assert "LIMIT 3  (rows=3" in text

    def test_execution_unaffected_afterwards(self, con):
        con.execute("EXPLAIN ANALYZE SELECT count(*) FROM t")
        assert con.execute("SELECT count(*) FROM t").scalar() == 1000

    def test_index_scan_annotated(self):
        con = core.connect()
        con.execute("CREATE TABLE g(box STBOX)")
        con.execute("CREATE INDEX rt ON g USING TRTREE(box)")
        con.execute(
            "INSERT INTO g SELECT ('STBOX X((' || i || ',' || i || '),("
            " ' || (i + 1) || ',' || (i + 1) || '))') "
            "FROM generate_series(1, 100) AS t(i)"
        )
        text = con.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM g WHERE box && "
            "stbox('STBOX X((10,10),(20,20))')"
        ).plan_text
        assert "TRTREE_INDEX_SCAN" in text
        assert "rows=" in text
