"""UNION / UNION ALL / EXCEPT / INTERSECT on both engines."""

import pytest

from repro.pgsim import RowDatabase
from repro.quack import BinderError, Database


def _make(factory):
    con = factory().connect()
    con.execute("CREATE TABLE t(a INTEGER, b VARCHAR)")
    con.execute(
        "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z'), (2, 'y')"
    )
    return con


@pytest.fixture(params=[Database, RowDatabase], ids=["quack", "pgsim"])
def con(request):
    return _make(request.param)


class TestSetOperations:
    def test_union_all_keeps_duplicates(self, con):
        rows = con.execute(
            "SELECT a FROM t WHERE a <= 2 UNION ALL "
            "SELECT a FROM t WHERE a >= 2 ORDER BY a"
        ).fetchall()
        assert [r[0] for r in rows] == [1, 2, 2, 2, 2, 3]

    def test_union_deduplicates(self, con):
        rows = con.execute(
            "SELECT a FROM t UNION SELECT a FROM t ORDER BY a"
        ).fetchall()
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_except(self, con):
        rows = con.execute(
            "SELECT a FROM t EXCEPT SELECT a FROM t WHERE a = 2 ORDER BY a"
        ).fetchall()
        assert [r[0] for r in rows] == [1, 3]

    def test_intersect(self, con):
        rows = con.execute(
            "SELECT a FROM t WHERE a <= 2 INTERSECT "
            "SELECT a FROM t WHERE a >= 2"
        ).fetchall()
        assert rows == [(2,)]

    def test_chained_unions(self, con):
        rows = con.execute(
            "SELECT 1 AS v UNION ALL SELECT 2 UNION ALL SELECT 3 "
            "ORDER BY v DESC"
        ).fetchall()
        assert [r[0] for r in rows] == [3, 2, 1]

    def test_order_by_output_name(self, con):
        rows = con.execute(
            "SELECT a AS v, b FROM t WHERE a = 1 UNION "
            "SELECT a, b FROM t WHERE a = 3 ORDER BY v DESC"
        ).fetchall()
        assert [r[0] for r in rows] == [3, 1]

    def test_limit_applies_to_whole(self, con):
        rows = con.execute(
            "SELECT a FROM t UNION ALL SELECT a FROM t LIMIT 5"
        ).fetchall()
        assert len(rows) == 5

    def test_multi_column(self, con):
        rows = con.execute(
            "SELECT a, b FROM t UNION SELECT a, b FROM t ORDER BY 1, 2"
        ).fetchall()
        assert rows == [(1, "x"), (2, "y"), (3, "z")]

    def test_column_count_mismatch(self, con):
        with pytest.raises(BinderError):
            con.execute("SELECT a, b FROM t UNION SELECT a FROM t")

    def test_union_in_subquery(self, con):
        got = con.execute(
            "SELECT count(*) FROM ("
            "SELECT a FROM t UNION SELECT a + 10 FROM t) s"
        ).scalar()
        assert got == 6

    def test_union_in_cte(self, con):
        got = con.execute(
            "WITH u AS (SELECT a FROM t WHERE a = 1 UNION "
            "SELECT a FROM t WHERE a = 3) SELECT sum(a) FROM u"
        ).scalar()
        assert got == 4

    def test_explain_shows_set_op(self, con):
        plan = con.explain("SELECT a FROM t UNION SELECT a FROM t")
        assert "UNION" in plan
