"""SQL lexer/parser tests."""

import pytest

from repro.quack.errors import ParserError
from repro.quack.sql import ast, parse_one, parse_sql, tokenize


class TestLexer:
    def test_operators_longest_match(self):
        kinds = [t.text for t in tokenize("a <= b <> c && d @> e")
                 if t.kind == "op"]
        assert kinds == ["<=", "<>", "&&", "@>"]

    def test_string_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- comment\n/* block */ , 2")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert texts == ["SELECT", "1", ",", "2"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5e-2")
        assert [t.kind for t in tokens[:-1]] == ["number"] * 4

    def test_quoted_identifier(self):
        tokens = tokenize('"Times Like These"')
        assert tokens[0].kind == "qident"
        assert tokens[0].text == "Times Like These"

    def test_unterminated_string(self):
        with pytest.raises(ParserError):
            tokenize("'oops")


class TestSelectParsing:
    def test_simple(self):
        stmt = parse_one("SELECT a, b FROM t")
        assert len(stmt.select_items) == 2
        assert isinstance(stmt.from_items[0], ast.BaseTableRef)

    def test_aliases(self):
        stmt = parse_one("SELECT a AS x, b y FROM t z")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "y"
        assert stmt.from_items[0].alias == "z"

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct

    def test_trailing_comma_before_from(self):
        # Appears verbatim in the paper's use-case query 6.
        stmt = parse_one("SELECT a, b, FROM t")
        assert len(stmt.select_items) == 2

    def test_group_order_limit(self):
        stmt = parse_one(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 "
            "ORDER BY a DESC LIMIT 5 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert not stmt.order_by[0].ascending
        assert isinstance(stmt.limit, ast.Literal)

    def test_joins(self):
        stmt = parse_one(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        join = stmt.from_items[0]
        assert isinstance(join, ast.JoinRef)
        assert join.join_type == "left"
        assert join.left.join_type == "inner"

    def test_comma_join(self):
        stmt = parse_one("SELECT * FROM a, b, c")
        assert len(stmt.from_items) == 3

    def test_subquery_in_from(self):
        stmt = parse_one("SELECT * FROM (SELECT 1 AS x) s")
        assert isinstance(stmt.from_items[0], ast.SubqueryRef)

    def test_from_subquery_requires_alias(self):
        with pytest.raises(ParserError):
            parse_one("SELECT * FROM (SELECT 1)")

    def test_table_function(self):
        stmt = parse_one("SELECT i FROM generate_series(1, 10) AS t(i)")
        ref = stmt.from_items[0]
        assert isinstance(ref, ast.TableFunctionRef)
        assert ref.column_aliases == ["i"]

    def test_ctes(self):
        stmt = parse_one(
            "WITH a AS (SELECT 1 AS x), b(y) AS (SELECT x FROM a) "
            "SELECT y FROM b"
        )
        assert len(stmt.ctes) == 2
        assert stmt.ctes[1].column_names == ["y"]

    def test_qualified_star(self):
        stmt = parse_one("SELECT t.* FROM t")
        assert isinstance(stmt.select_items[0].expr, ast.Star)
        assert stmt.select_items[0].expr.qualifier == "t"


class TestExpressions:
    def _expr(self, text):
        return parse_one(f"SELECT {text}").select_items[0].expr

    def test_precedence_arith(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, ast.BinaryOp)
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_and_or(self):
        e = self._expr("a OR b AND c")
        assert e.op == "OR"

    def test_comparison_chain_with_custom_op(self):
        e = self._expr("a && b")
        assert e.op == "&&"

    def test_cast_postfix(self):
        e = self._expr("x::INTEGER::VARCHAR")
        assert isinstance(e, ast.Cast)
        assert e.type_name == "VARCHAR"
        assert isinstance(e.operand, ast.Cast)

    def test_cast_with_modifiers(self):
        e = self._expr("x::DECIMAL(10,2)")
        assert e.type_name.startswith("DECIMAL")

    def test_typed_literal(self):
        e = self._expr("stbox 'STBOX X((1,1),(2,2))'")
        assert isinstance(e, ast.Cast)
        assert e.type_name == "stbox"

    def test_interval_literal(self):
        e = self._expr("INTERVAL '1 day'")
        assert isinstance(e, ast.IntervalExpr)

    def test_interval_expression(self):
        e = self._expr("INTERVAL (i || ' minutes')")
        assert isinstance(e, ast.IntervalExpr)
        assert isinstance(e.operand, ast.BinaryOp)

    def test_case(self):
        e = self._expr("CASE WHEN a THEN 1 ELSE 2 END")
        assert isinstance(e, ast.CaseExpr)
        assert len(e.branches) == 1

    def test_in_list(self):
        e = self._expr("a IN (1, 2, 3)")
        assert isinstance(e, ast.InList)

    def test_not_in(self):
        e = self._expr("a NOT IN (1)")
        assert isinstance(e, ast.InList)
        assert e.negated

    def test_between(self):
        e = self._expr("a BETWEEN 1 AND 5")
        assert isinstance(e, ast.Between)

    def test_is_null(self):
        assert isinstance(self._expr("a IS NULL"), ast.IsNull)
        assert self._expr("a IS NOT NULL").negated

    def test_exists(self):
        e = self._expr("EXISTS (SELECT 1)")
        assert isinstance(e, ast.Exists)

    def test_scalar_subquery(self):
        e = self._expr("(SELECT max(x) FROM t)")
        assert isinstance(e, ast.ScalarSubquery)

    def test_quantified_all(self):
        e = self._expr("a <= ALL (SELECT b FROM t)")
        assert isinstance(e, ast.QuantifiedComparison)
        assert e.quantifier == "ALL"

    def test_in_subquery(self):
        e = self._expr("a IN (SELECT b FROM t)")
        assert isinstance(e, ast.InSubquery)

    def test_struct_literal(self):
        e = self._expr("{min_x: 1000, min_y: 1000}::BOX_2D")
        assert isinstance(e, ast.Cast)
        assert isinstance(e.operand, ast.StructLiteral)

    def test_count_star(self):
        e = self._expr("count(*)")
        assert isinstance(e, ast.FunctionCall)
        assert e.is_star

    def test_count_distinct(self):
        e = self._expr("count(DISTINCT x)")
        assert e.distinct

    def test_unary_minus(self):
        e = self._expr("-x")
        assert isinstance(e, ast.UnaryOp)

    def test_like(self):
        e = self._expr("name LIKE 'a%'")
        assert isinstance(e, ast.Like)


class TestOtherStatements:
    def test_create_table(self):
        stmt = parse_one("CREATE TABLE t(a INTEGER, b TIMESTAMPTZ)")
        assert isinstance(stmt, ast.CreateTableStatement)
        assert [c.name for c in stmt.columns] == ["a", "b"]

    def test_create_or_replace(self):
        stmt = parse_one("CREATE OR REPLACE TABLE t(a INTEGER)")
        assert stmt.or_replace

    def test_create_table_as(self):
        stmt = parse_one("CREATE TABLE t AS SELECT 1 AS x")
        assert stmt.as_query is not None

    def test_create_index_using(self):
        stmt = parse_one("CREATE INDEX i ON t USING TRTREE(col)")
        assert stmt.using == "TRTREE"
        assert stmt.column == "col"

    def test_insert_values(self):
        stmt = parse_one("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert len(stmt.values) == 2

    def test_insert_columns(self):
        stmt = parse_one("INSERT INTO t(a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_insert_select(self):
        stmt = parse_one("INSERT INTO t SELECT * FROM s")
        assert stmt.query is not None

    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = a + 1 WHERE a > 0")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.DeleteStatement)

    def test_drop(self):
        stmt = parse_one("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_explain(self):
        stmt = parse_one("EXPLAIN SELECT 1")
        assert isinstance(stmt, ast.ExplainStatement)

    def test_script(self):
        stmts = parse_sql("SELECT 1; SELECT 2;")
        assert len(stmts) == 2

    def test_unsupported(self):
        with pytest.raises(ParserError):
            parse_one("GRANT ALL TO someone")
