"""Columnar storage internals: segments, gather, tombstones, updates."""

import numpy as np
import pytest

from repro.quack.catalog import ColumnData, Table
from repro.quack.errors import CatalogError, ExecutionError
from repro.quack.types import BIGINT, VARCHAR
from repro.quack.vector import STANDARD_VECTOR_SIZE


class TestColumnData:
    def test_append_and_seal(self):
        col = ColumnData(BIGINT)
        for i in range(10):
            col.append(i)
        assert len(col) == 10
        chunks = list(col.chunks())
        assert sum(len(c) for c in chunks) == 10

    def test_auto_seal_at_vector_size(self):
        col = ColumnData(BIGINT)
        for i in range(STANDARD_VECTOR_SIZE + 5):
            col.append(i)
        assert len(col.segments) >= 1
        assert len(col) == STANDARD_VECTOR_SIZE + 5

    def test_nulls_tracked(self):
        col = ColumnData(VARCHAR)
        col.append("a")
        col.append(None)
        vec = next(col.chunks())
        assert vec.to_list() == ["a", None]

    def test_gather_across_segments(self):
        col = ColumnData(BIGINT)
        for i in range(STANDARD_VECTOR_SIZE * 2 + 10):
            col.append(i)
        picks = np.array(
            [0, STANDARD_VECTOR_SIZE, STANDARD_VECTOR_SIZE * 2 + 9],
            dtype=np.int64,
        )
        assert col.gather(picks).to_list() == [
            0, STANDARD_VECTOR_SIZE, STANDARD_VECTOR_SIZE * 2 + 9
        ]

    def test_gather_out_of_range(self):
        col = ColumnData(BIGINT)
        col.append(1)
        with pytest.raises(ExecutionError):
            col.gather(np.array([5], dtype=np.int64))

    def test_rewrite(self):
        col = ColumnData(BIGINT)
        col.append(1)
        col.append(2)
        col.rewrite([10, None])
        vec = next(col.chunks())
        assert vec.to_list() == [10, None]


class TestTable:
    def _table(self):
        return Table("t", [("a", BIGINT), ("b", VARCHAR)])

    def test_append_and_scan(self):
        table = self._table()
        table.append_rows([(1, "x"), (2, "y")])
        rows = []
        for chunk, row_ids in table.scan():
            rows.extend(chunk.rows())
        assert rows == [(1, "x"), (2, "y")]

    def test_wrong_arity_rejected(self):
        table = self._table()
        with pytest.raises(ExecutionError):
            table.append_rows([(1,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("bad", [("a", BIGINT), ("A", VARCHAR)])

    def test_delete_tombstones(self):
        table = self._table()
        table.append_rows([(i, "r") for i in range(10)])
        table.delete_rows([0, 5])
        assert table.num_rows() == 8
        scanned = []
        for chunk, row_ids in table.scan():
            scanned.extend(int(r) for r in row_ids)
        assert 0 not in scanned and 5 not in scanned

    def test_delete_idempotent(self):
        table = self._table()
        table.append_rows([(1, "x")])
        assert table.delete_rows([0]) == 1
        assert table.delete_rows([0]) == 0

    def test_fetch_skips_deleted(self):
        table = self._table()
        table.append_rows([(i, "r") for i in range(5)])
        table.delete_rows([2])
        chunk = table.fetch(np.array([1, 2, 3], dtype=np.int64))
        assert chunk.rows() == [(1, "r"), (3, "r")]

    def test_update_column(self):
        table = self._table()
        table.append_rows([(1, "x"), (2, "y")])
        table.update_column("b", ["X", "Y"])
        rows = []
        for chunk, _ in table.scan():
            rows.extend(chunk.rows())
        assert rows == [(1, "X"), (2, "Y")]

    def test_column_index_case_insensitive(self):
        table = self._table()
        assert table.column_index("A") == 0
        with pytest.raises(CatalogError):
            table.column_index("nope")

    def test_large_append_chunking(self):
        table = self._table()
        table.append_rows([(i, str(i)) for i in range(5000)])
        total = 0
        for chunk, _ in table.scan():
            assert chunk.count <= STANDARD_VECTOR_SIZE
            total += chunk.count
        assert total == 5000
