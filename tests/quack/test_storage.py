"""Columnar storage internals: segments, gather, tombstones, updates."""

import numpy as np
import pytest

from repro.quack.catalog import ColumnData, Table
from repro.quack.errors import CatalogError, ExecutionError
from repro.quack.types import BIGINT, VARCHAR
from repro.quack.vector import STANDARD_VECTOR_SIZE


class TestColumnData:
    def test_append_and_seal(self):
        col = ColumnData(BIGINT)
        for i in range(10):
            col.append(i)
        assert len(col) == 10
        chunks = list(col.chunks())
        assert sum(len(c) for c in chunks) == 10

    def test_auto_seal_at_vector_size(self):
        col = ColumnData(BIGINT)
        for i in range(STANDARD_VECTOR_SIZE + 5):
            col.append(i)
        assert len(col.segments) >= 1
        assert len(col) == STANDARD_VECTOR_SIZE + 5

    def test_nulls_tracked(self):
        col = ColumnData(VARCHAR)
        col.append("a")
        col.append(None)
        vec = next(col.chunks())
        assert vec.to_list() == ["a", None]

    def test_gather_across_segments(self):
        col = ColumnData(BIGINT)
        for i in range(STANDARD_VECTOR_SIZE * 2 + 10):
            col.append(i)
        picks = np.array(
            [0, STANDARD_VECTOR_SIZE, STANDARD_VECTOR_SIZE * 2 + 9],
            dtype=np.int64,
        )
        assert col.gather(picks).to_list() == [
            0, STANDARD_VECTOR_SIZE, STANDARD_VECTOR_SIZE * 2 + 9
        ]

    def test_gather_out_of_range(self):
        col = ColumnData(BIGINT)
        col.append(1)
        with pytest.raises(ExecutionError):
            col.gather(np.array([5], dtype=np.int64))

    def test_rewrite(self):
        col = ColumnData(BIGINT)
        col.append(1)
        col.append(2)
        col.rewrite([10, None])
        vec = next(col.chunks())
        assert vec.to_list() == [10, None]


class TestTable:
    def _table(self):
        return Table("t", [("a", BIGINT), ("b", VARCHAR)])

    def test_append_and_scan(self):
        table = self._table()
        table.append_rows([(1, "x"), (2, "y")])
        rows = []
        for chunk, row_ids in table.scan():
            rows.extend(chunk.rows())
        assert rows == [(1, "x"), (2, "y")]

    def test_wrong_arity_rejected(self):
        table = self._table()
        with pytest.raises(ExecutionError):
            table.append_rows([(1,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("bad", [("a", BIGINT), ("A", VARCHAR)])

    def test_delete_tombstones(self):
        table = self._table()
        table.append_rows([(i, "r") for i in range(10)])
        table.delete_rows([0, 5])
        assert table.num_rows() == 8
        scanned = []
        for chunk, row_ids in table.scan():
            scanned.extend(int(r) for r in row_ids)
        assert 0 not in scanned and 5 not in scanned

    def test_delete_idempotent(self):
        table = self._table()
        table.append_rows([(1, "x")])
        assert table.delete_rows([0]) == 1
        assert table.delete_rows([0]) == 0

    def test_fetch_skips_deleted(self):
        table = self._table()
        table.append_rows([(i, "r") for i in range(5)])
        table.delete_rows([2])
        chunk = table.fetch(np.array([1, 2, 3], dtype=np.int64))
        assert chunk.rows() == [(1, "r"), (3, "r")]

    def test_update_column(self):
        table = self._table()
        table.append_rows([(1, "x"), (2, "y")])
        table.update_column("b", ["X", "Y"])
        rows = []
        for chunk, _ in table.scan():
            rows.extend(chunk.rows())
        assert rows == [(1, "X"), (2, "Y")]

    def test_column_index_case_insensitive(self):
        table = self._table()
        assert table.column_index("A") == 0
        with pytest.raises(CatalogError):
            table.column_index("nope")

    def test_large_append_chunking(self):
        table = self._table()
        table.append_rows([(i, str(i)) for i in range(5000)])
        total = 0
        for chunk, _ in table.scan():
            assert chunk.count <= STANDARD_VECTOR_SIZE
            total += chunk.count
        assert total == 5000


# ---------------------------------------------------------------------------
# Persistent columnar format (PR: compressed segments + zone maps + spill)
# ---------------------------------------------------------------------------

import json
import math
import os
import pickle
import struct
from collections import Counter

from repro import core
from repro.analysis import set_verification_enabled
from repro.quack import Database, storage
from repro.quack.errors import QuackError
from repro.quack.types import BOOLEAN, DOUBLE
from repro.quack.vector import Vector


def _codec_round_trip(ltype, values):
    vector = Vector.from_values(ltype, values)
    codec, payload, meta = storage.encode_segment(vector)
    data = storage.decode_segment(codec, payload, meta, len(values), ltype)
    validity = storage.decode_validity(
        storage.encode_validity(vector.validity), len(values)
    )
    return codec, Vector(ltype, data, validity).to_list()


def _same_floats(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        if e is None:
            assert g is None
        elif isinstance(e, float) and math.isnan(e):
            assert isinstance(g, float) and math.isnan(g)
        else:
            assert g == e
            if isinstance(e, float):
                assert math.copysign(1.0, g) == math.copysign(1.0, e)


class TestCodecs:
    def test_int_delta_with_nulls(self):
        values = [1, None, 3, 1_000_000, -5, None, 7]
        codec, got = _codec_round_trip(BIGINT, values)
        assert got == values
        assert codec == "delta"

    def test_int_extremes(self):
        values = [-(2**62), 2**62, 0, -1]
        _, got = _codec_round_trip(BIGINT, values)
        assert got == values

    def test_float_nan_and_negative_zero(self):
        values = [1.5, float("nan"), -0.0, 0.0, None, -1e300]
        _, got = _codec_round_trip(DOUBLE, values)
        _same_floats(got, values)

    def test_dict_strings(self):
        values = (["red", "green", "blue"] * 40) + [None, "red"]
        codec, got = _codec_round_trip(VARCHAR, values)
        assert got == values
        assert codec == "dict"

    def test_bool_bitpack(self):
        values = [True, False, None, True] * 9
        codec, got = _codec_round_trip(BOOLEAN, values)
        assert got == values
        assert codec == "bitpack"

    def test_all_null_segment(self):
        values = [None] * 17
        _, got = _codec_round_trip(VARCHAR, values)
        assert got == values

    def test_validity_round_trip_elides_all_valid(self):
        import numpy as np

        all_valid = np.ones(100, dtype=np.bool_)
        blob = storage.encode_validity(all_valid)
        assert blob == b""
        assert storage.decode_validity(blob, 100).all()
        holey = all_valid.copy()
        holey[3] = False
        back = storage.decode_validity(storage.encode_validity(holey), 100)
        assert (back == holey).all()


class TestFileRoundTrip:
    def _reload(self, con, path):
        con.execute(f"CHECKPOINT '{path}'")
        fresh = Database().connect()
        fresh.execute(f"ATTACH '{path}'")
        return fresh

    def test_empty_table(self, tmp_path):
        con = Database().connect()
        con.execute("CREATE TABLE empty(a BIGINT, b VARCHAR)")
        con.execute("ATTACH '%s'" % (tmp_path / "e.quackdb"))
        fresh = self._reload(con, tmp_path / "e.quackdb")
        assert fresh.execute("SELECT count(*) FROM empty").scalar() == 0
        assert fresh.execute("SELECT * FROM empty").column_names == \
            ["a", "b"]

    def test_single_row_group(self, tmp_path):
        con = Database().connect()
        con.execute("CREATE TABLE t(a BIGINT, b VARCHAR)")
        rows = [(i, f"r{i}") for i in range(100)]
        con.database.catalog.get_table("t").append_rows(rows)
        fresh = self._reload(con, tmp_path / "one.quackdb")
        assert fresh.execute("SELECT * FROM t").fetchall() == rows

    def test_many_row_groups_and_nulls(self, tmp_path):
        con = Database().connect()
        con.execute("CREATE TABLE t(a BIGINT, b VARCHAR, c DOUBLE)")
        rows = [
            (i if i % 7 else None,
             None if i % 11 == 0 else f"v{i % 50}",
             float(i) / 3.0 if i % 5 else None)
            for i in range(STANDARD_VECTOR_SIZE * 3 + 123)
        ]
        con.database.catalog.get_table("t").append_rows(rows)
        fresh = self._reload(con, tmp_path / "many.quackdb")
        assert fresh.execute("SELECT * FROM t").fetchall() == rows

    def test_special_floats_persist(self, tmp_path):
        con = Database().connect()
        con.execute("CREATE TABLE f(x DOUBLE)")
        values = [1.5, float("nan"), -0.0, 0.0, None, float("inf")]
        con.database.catalog.get_table("f").append_rows(
            [(v,) for v in values]
        )
        fresh = self._reload(con, tmp_path / "f.quackdb")
        got = [r[0] for r in fresh.execute("SELECT x FROM f").fetchall()]
        _same_floats(got, values)

    def test_tombstones_not_persisted(self, tmp_path):
        con = Database().connect()
        con.execute("CREATE TABLE t(a BIGINT)")
        con.database.catalog.get_table("t").append_rows(
            [(i,) for i in range(10)]
        )
        con.execute("DELETE FROM t WHERE a >= 5")
        fresh = self._reload(con, tmp_path / "d.quackdb")
        assert fresh.execute("SELECT count(*) FROM t").scalar() == 5
        table = fresh.database.catalog.get_table("t")
        assert not table._deleted_ids

    def test_appends_after_attach_then_checkpoint(self, tmp_path):
        path = tmp_path / "grow.quackdb"
        con = Database().connect()
        con.execute("CREATE TABLE t(a BIGINT)")
        con.database.catalog.get_table("t").append_rows([(1,), (2,)])
        fresh = self._reload(con, path)
        fresh.execute("INSERT INTO t VALUES (3)")
        assert fresh.execute("SELECT count(*) FROM t").scalar() == 3
        # CHECKPOINT with no path re-targets the attached file.
        again = self._reload(fresh, path)
        assert sorted(
            r[0] for r in again.execute("SELECT a FROM t").fetchall()
        ) == [1, 2, 3]

    def test_checkpoint_without_attach_raises(self):
        con = Database().connect()
        with pytest.raises(QuackError, match="CHECKPOINT"):
            con.execute("CHECKPOINT")

    def test_index_rebuilt_on_attach(self, tmp_path):
        con = core.connect()
        con.execute("CREATE TABLE g(box STBOX)")
        con.execute("CREATE INDEX rt ON g USING TRTREE(box)")
        con.execute(
            "INSERT INTO g SELECT ('STBOX X((' || i || ',' || i || '),"
            "(' || (i + 1) || ',' || (i + 1) || '))') "
            "FROM generate_series(1, 50) AS t(i)"
        )
        path = tmp_path / "idx.quackdb"
        con.execute(f"CHECKPOINT '{path}'")
        fresh = core.connect()
        fresh.execute(f"ATTACH '{path}'")
        table = fresh.database.catalog.get_table("g")
        assert [index.name for index in table.indexes] == ["rt"]
        got = fresh.execute(
            "SELECT count(*) FROM g WHERE box && "
            "stbox('STBOX X((10,10),(12,12))')"
        ).scalar()
        assert got == con.execute(
            "SELECT count(*) FROM g WHERE box && "
            "stbox('STBOX X((10,10),(12,12))')"
        ).scalar()


class TestFormatVersion:
    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "future.quackdb"
        footer = {
            "magic": "quackdb",
            "format_version": storage.FORMAT_VERSION + 97,
            "tables": [],
        }
        blob = json.dumps(footer).encode()
        with open(path, "wb") as handle:
            handle.write(storage._MAGIC)
            handle.write(blob)
            handle.write(struct.pack("<Q", len(storage._MAGIC)))
            handle.write(storage._MAGIC)
        con = Database().connect()
        with pytest.raises(QuackError, match="newer than the supported"):
            con.execute(f"ATTACH '{path}'")

    def test_version_field_written(self, tmp_path):
        path = tmp_path / "v.quackdb"
        con = Database().connect()
        con.execute("CREATE TABLE t(a BIGINT)")
        con.execute(f"CHECKPOINT '{path}'")
        raw = path.read_bytes()
        (footer_offset,) = struct.unpack("<Q", raw[-16:-8])
        footer = json.loads(raw[footer_offset:-16])
        assert footer["format_version"] == storage.FORMAT_VERSION
        assert raw[:8] == storage._MAGIC == raw[-8:]

    def test_legacy_pickle_shim(self, tmp_path):
        path = tmp_path / "old.quackdb"
        payload = {
            "magic": "quackdb-v1",
            "tables": [{
                "name": "legacy",
                "columns": [["a", "BIGINT"], ["b", "VARCHAR"]],
                "rows": [(1, "x"), (2, None)],
                "indexes": [],
            }],
        }
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        con = Database().connect()
        con.execute(f"ATTACH '{path}'")
        assert con.execute(
            "SELECT * FROM legacy ORDER BY a"
        ).fetchall() == [(1, "x"), (2, None)]

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.quackdb"
        path.write_bytes(b"this is not a database file at all")
        con = Database().connect()
        with pytest.raises(QuackError, match="not a quack database"):
            con.execute(f"ATTACH '{path}'")

def _seeded_con(rows=STANDARD_VECTOR_SIZE * 5):
    """Sequential table spanning ``rows // 2048`` row groups; column ``b``
    is zero-padded so lexicographic order tracks ``a``."""
    con = Database().connect()
    con.execute("CREATE TABLE t(a BIGINT, b VARCHAR)")
    con.database.catalog.get_table("t").append_rows(
        [(i, f"k{i:08d}") for i in range(rows)]
    )
    return con


class TestZoneMapSkipping:
    def _attached(self, tmp_path, rows=STANDARD_VECTOR_SIZE * 5):
        con = _seeded_con(rows)
        path = tmp_path / "zm.quackdb"
        con.execute(f"CHECKPOINT '{path}'")
        fresh = Database().connect()
        fresh.execute(f"ATTACH '{path}'")
        return con, fresh

    def _counters(self, con):
        stats = con.last_query_stats
        return (stats.counter("storage.rowgroups_scanned"),
                stats.counter("storage.rowgroups_skipped"))

    def test_between_skips_most_groups(self, tmp_path):
        mem, att = self._attached(tmp_path)
        sql = "SELECT count(*) FROM t WHERE a BETWEEN 100 AND 110"
        assert att.execute(sql).scalar() == 11
        scanned, skipped = self._counters(att)
        assert skipped == 4
        assert scanned / (scanned + skipped) <= 0.20
        # The pruned result matches the unpruned in-memory baseline.
        assert att.execute(sql).scalar() == mem.execute(sql).scalar()

    def test_equality_and_range_ops(self, tmp_path):
        _, att = self._attached(tmp_path)
        for sql, expected in [
            ("SELECT count(*) FROM t WHERE a = 9000", 1),
            ("SELECT count(*) FROM t WHERE a < 50", 50),
            ("SELECT count(*) FROM t WHERE a >= 10000", 240),
        ]:
            assert att.execute(sql).scalar() == expected
            scanned, skipped = self._counters(att)
            assert skipped >= 3, sql

    def test_string_predicate_prunes(self, tmp_path):
        _, att = self._attached(tmp_path)
        got = att.execute(
            "SELECT a FROM t WHERE b = 'k00009000'"
        ).fetchall()
        assert got == [(9000,)]
        _, skipped = self._counters(att)
        assert skipped == 4

    def test_in_memory_table_prunes_too(self):
        con = _seeded_con()
        assert con.execute(
            "SELECT count(*) FROM t WHERE a BETWEEN 4200 AND 4300"
        ).scalar() == 101
        stats = con.last_query_stats
        assert stats.counter("storage.rowgroups_skipped") >= 3

    def test_kill_switch(self, tmp_path):
        _, att = self._attached(tmp_path)
        att.execute("SET zone_maps = 'off'")
        sql = "SELECT count(*) FROM t WHERE a BETWEEN 100 AND 110"
        assert att.execute(sql).scalar() == 11
        scanned, skipped = self._counters(att)
        assert skipped == 0
        assert att.execute("SHOW zone_maps").fetchall() == [("off",)]
        att.execute("SET zone_maps = 'on'")
        assert att.execute(sql).scalar() == 11
        assert self._counters(att)[1] == 4

    def test_stale_maps_after_update_stay_correct(self, tmp_path):
        _, att = self._attached(tmp_path)
        att.execute("UPDATE t SET a = 100000 + a WHERE a < 10")
        sql = "SELECT count(*) FROM t WHERE a >= 100000"
        assert att.execute(sql).scalar() == 10
        att.execute("DELETE FROM t WHERE a = 100005")
        assert att.execute(sql).scalar() == 9
        att.execute("INSERT INTO t VALUES (100099, 'tail')")
        assert att.execute(sql).scalar() == 10

    def test_box_overlap_prunes(self, tmp_path):
        con = core.connect()
        con.execute("CREATE TABLE g(box STBOX)")
        con.execute(
            "INSERT INTO g SELECT ('STBOX X((' || i || ',' || i || '),"
            "(' || (i + 1) || ',' || (i + 1) || '))') "
            "FROM generate_series(1, 8192) AS t(i)"
        )
        path = tmp_path / "box.quackdb"
        con.execute(f"CHECKPOINT '{path}'")
        att = core.connect()
        att.execute(f"ATTACH '{path}'")
        sql = ("SELECT count(*) FROM g WHERE box && "
               "stbox('STBOX X((10,10),(20,20))')")
        assert att.execute(sql).scalar() == con.execute(sql).scalar()
        stats = att.last_query_stats
        assert stats.counter("storage.rowgroups_skipped") >= 3

    def test_explain_analyze_shows_rowgroups(self, tmp_path):
        _, att = self._attached(tmp_path)
        text = att.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM t WHERE a < 100"
        ).plan_text
        assert "[zonemap: a <]" in text
        assert "rowgroups_skipped=4" in text

    def test_crosscheck_under_verification(self, tmp_path):
        _, att = self._attached(tmp_path)
        set_verification_enabled(True)
        try:
            sql = "SELECT count(*) FROM t WHERE a BETWEEN 100 AND 110"
            assert att.execute(sql).scalar() == 11
            stats = att.last_query_stats
            assert stats.counter("verify.zonemap_crosschecks") == 4
        finally:
            set_verification_enabled(
                os.environ.get("REPRO_VERIFICATION") == "1"
            )


class TestAnalyzeZoneMaps:
    def test_analyze_reads_footer(self, tmp_path):
        con = _seeded_con()
        path = tmp_path / "az.quackdb"
        con.execute(f"CHECKPOINT '{path}'")
        att = Database().connect()
        att.execute(f"ATTACH '{path}'")
        att.execute("ANALYZE t")
        assert att.last_query_stats.counter("storage.zonemap_analyze") == 1
        table = att.database.catalog.get_table("t")
        assert table.stats.row_count == STANDARD_VECTOR_SIZE * 5
        a_stats = table.stats.column(0)
        assert a_stats.min_value == 0
        assert a_stats.max_value == STANDARD_VECTOR_SIZE * 5 - 1
        assert a_stats.null_count == 0

    def test_append_marks_stats_dirty(self, tmp_path):
        con = _seeded_con(100)
        path = tmp_path / "dirty.quackdb"
        con.execute(f"CHECKPOINT '{path}'")
        att = Database().connect()
        att.execute(f"ATTACH '{path}'")
        att.execute("INSERT INTO t VALUES (1000000, 'new')")
        att.execute("ANALYZE t")
        # The fast path must refuse: zone maps no longer cover the data.
        assert att.last_query_stats.counter("storage.zonemap_analyze") == 0
        table = att.database.catalog.get_table("t")
        assert table.stats.row_count == 101
        assert table.stats.column(0).max_value == 1000000

    def test_delete_marks_stats_dirty(self, tmp_path):
        con = _seeded_con(100)
        path = tmp_path / "dirty2.quackdb"
        con.execute(f"CHECKPOINT '{path}'")
        att = Database().connect()
        att.execute(f"ATTACH '{path}'")
        att.execute("DELETE FROM t WHERE a < 10")
        att.execute("ANALYZE t")
        assert att.last_query_stats.counter("storage.zonemap_analyze") == 0
        assert att.database.catalog.get_table("t").stats.row_count == 90


class TestSpill:
    _ROWS = STANDARD_VECTOR_SIZE * 10

    def _con(self):
        con = Database().connect()
        con.execute("CREATE TABLE t(a BIGINT, b VARCHAR, g BIGINT)")
        rows = [
            (((i * 2654435761) % self._ROWS), f"pad{i:032d}", i % 97)
            for i in range(self._ROWS)
        ]
        con.database.catalog.get_table("t").append_rows(rows)
        return con

    def _spill_counter(self, con, name):
        return con.last_query_stats.counter(name)

    def test_sort_bit_identical(self):
        con = self._con()
        sql = "SELECT a, b FROM t ORDER BY g, a"
        baseline = con.execute(sql).fetchall()
        for limit, expect_spill in [(1000, False), (1, True),
                                    (0.25, True)]:
            con.execute(f"SET memory_limit = {limit}")
            got = con.execute(sql).fetchall()
            assert got == baseline, f"memory_limit={limit}"
            spilled = self._spill_counter(con, "storage.spilled_sorts")
            runs = self._spill_counter(con, "storage.spill_runs")
            if expect_spill:
                assert spilled == 1 and runs >= 2, f"memory_limit={limit}"
            else:
                assert spilled == 0 and runs == 0
        con.execute("SET memory_limit = 0")  # disable again
        assert con.execute(sql).fetchall() == baseline

    def test_sort_stability_under_spill(self):
        con = self._con()
        # g has 97 duplicates per value: ties must keep scan order.
        sql = "SELECT g, a FROM t ORDER BY g"
        baseline = con.execute(sql).fetchall()
        con.execute("SET memory_limit = 0.1")
        assert con.execute(sql).fetchall() == baseline
        assert self._spill_counter(con, "storage.spilled_sorts") == 1

    def test_aggregate_bit_identical(self):
        con = self._con()
        sql = ("SELECT g, count(*), sum(a), min(b), max(a) FROM t "
               "GROUP BY g")
        baseline = con.execute(sql).fetchall()
        for limit in (1, 0.25):
            con.execute(f"SET memory_limit = {limit}")
            assert con.execute(sql).fetchall() == baseline
            assert self._spill_counter(
                con, "storage.spilled_aggregates") == 1
            assert self._spill_counter(
                con, "storage.spill_partitions") >= 1
        con.execute("SET memory_limit = 1000")
        assert con.execute(sql).fetchall() == baseline
        assert self._spill_counter(con, "storage.spilled_aggregates") == 0

    def test_join_bit_identical(self):
        con = self._con()
        con.execute("CREATE TABLE dim(g BIGINT, name VARCHAR)")
        con.database.catalog.get_table("dim").append_rows(
            [(i, f"group-{i:028d}") for i in range(97)]
        )
        # dim first: the big table lands on the build (right) side.
        sql = ("SELECT t.a, dim.name FROM dim, t "
               "WHERE t.g = dim.g AND t.a < 5000")
        baseline = con.execute(sql).fetchall()
        con.execute("SET memory_limit = 0.25")
        got = con.execute(sql).fetchall()
        assert got == baseline
        assert self._spill_counter(con, "storage.spilled_joins") >= 1
        con.execute("SET memory_limit = 0")
        assert con.execute(sql).fetchall() == baseline

    def test_join_null_keys_dropped(self):
        con = Database().connect()
        con.execute("CREATE TABLE l(k BIGINT)")
        con.execute("CREATE TABLE r(k BIGINT, v VARCHAR)")
        con.database.catalog.get_table("l").append_rows(
            [(i % 50 if i % 13 else None,) for i in range(6000)]
        )
        con.database.catalog.get_table("r").append_rows(
            [(i % 50 if i % 7 else None, f"pad{i:040d}")
             for i in range(6000)]
        )
        sql = "SELECT count(*) FROM l, r WHERE l.k = r.k"
        baseline = con.execute(sql).scalar()
        con.execute("SET memory_limit = 0.1")
        assert con.execute(sql).scalar() == baseline

    def test_distinct_aggregate_under_spill(self):
        con = self._con()
        sql = "SELECT g, count(DISTINCT a) FROM t GROUP BY g"
        baseline = con.execute(sql).fetchall()
        con.execute("SET memory_limit = 0.5")
        assert con.execute(sql).fetchall() == baseline

    def test_memory_limit_setting_round_trip(self):
        con = Database().connect()
        con.execute("SET memory_limit = 64")
        assert con.execute("SHOW memory_limit").fetchall() == [(64.0,)]
        con.execute("SET memory_limit = 0")
        assert con.execute("SHOW memory_limit").fetchall() == [(None,)]
        with pytest.raises(QuackError):
            con.execute("SET memory_limit = 'lots'")


# ---------------------------------------------------------------------------
# Differential battery: in-memory quack vs persisted quack vs pgsim
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def berlinmod_dataset():
    from repro.berlinmod import generate

    return generate(0.001, spacing_m=1200.0)


@pytest.fixture(scope="module")
def berlinmod_duck(berlinmod_dataset):
    from repro.berlinmod import load_dataset

    con = core.connect()
    load_dataset(con, berlinmod_dataset)
    return con


@pytest.fixture(scope="module")
def berlinmod_persisted(berlinmod_duck, tmp_path_factory):
    path = tmp_path_factory.mktemp("quackdb") / "berlinmod.quackdb"
    berlinmod_duck.execute(f"CHECKPOINT '{path}'")
    con = core.connect()
    con.execute(f"ATTACH '{path}'")
    return con


@pytest.fixture(scope="module")
def berlinmod_pgsim(berlinmod_dataset):
    from repro.berlinmod import load_dataset

    con = core.connect_baseline()
    load_dataset(con, berlinmod_dataset)
    return con


def _multiset(rows):
    return Counter(map(repr, rows))


class TestDifferentialPersisted:
    """The persisted-and-reloaded engine must agree with the in-memory
    engine and with the row-engine oracle on the BerlinMOD battery."""

    def _numbers(self):
        from repro.berlinmod import QUERIES

        return [q.number for q in QUERIES]

    def test_tables_survive(self, berlinmod_duck, berlinmod_persisted):
        for table in ("Vehicles", "Trips", "Licences1", "Periods1",
                      "Points1", "Regions1", "Instants1"):
            sql = f"SELECT count(*) FROM {table}"
            assert berlinmod_persisted.execute(sql).scalar() == \
                berlinmod_duck.execute(sql).scalar(), table

    def test_all_queries_vs_in_memory(self, berlinmod_duck,
                                      berlinmod_persisted):
        from repro.berlinmod import get_query

        for number in self._numbers():
            sql = get_query(number).sql
            expected = _multiset(berlinmod_duck.execute(sql).fetchall())
            got = _multiset(berlinmod_persisted.execute(sql).fetchall())
            assert got == expected, f"query {number}"

    def test_queries_vs_pgsim(self, berlinmod_persisted, berlinmod_pgsim):
        from repro.berlinmod import get_query

        for number in (1, 2, 3, 5, 7, 10):
            sql = get_query(number).sql
            expected = _multiset(berlinmod_pgsim.execute(sql).fetchall())
            got = _multiset(berlinmod_persisted.execute(sql).fetchall())
            assert got == expected, f"query {number}"

    def test_spill_agrees_with_pgsim(self, berlinmod_persisted,
                                     berlinmod_pgsim):
        sql = ("SELECT t.VehicleId, count(*) FROM Trips t, Vehicles v "
               "WHERE t.VehicleId = v.VehicleId "
               "GROUP BY t.VehicleId ORDER BY t.VehicleId")
        expected = berlinmod_pgsim.execute(sql).fetchall()
        berlinmod_persisted.execute("SET memory_limit = 1")
        try:
            got = berlinmod_persisted.execute(sql).fetchall()
        finally:
            berlinmod_persisted.execute("SET memory_limit = 0")
        assert _multiset(got) == _multiset(expected)


class TestAuxCacheInvalidation:
    """Satellite: derived ``_aux`` views on lazily-decoded storage chunks
    must be dropped/refreshed on rewrite — verified under the
    decompressed-chunk verification hooks."""

    def _attached_boxes(self, tmp_path):
        con = core.connect()
        con.execute("CREATE TABLE g(id BIGINT, box STBOX)")
        con.execute(
            "INSERT INTO g SELECT i, ('STBOX X((' || i || ',' || i || '),"
            "(' || (i + 1) || ',' || (i + 1) || '))') "
            "FROM generate_series(1, 3000) AS t(i)"
        )
        path = tmp_path / "aux.quackdb"
        con.execute(f"CHECKPOINT '{path}'")
        att = core.connect()
        att.execute(f"ATTACH '{path}'")
        return att

    def test_repeated_scans_serve_fresh_aux(self, tmp_path):
        att = self._attached_boxes(tmp_path)
        set_verification_enabled(True)
        try:
            sql = ("SELECT count(*) FROM g WHERE box && "
                   "stbox('STBOX X((100,100),(200,200))')")
            first = att.execute(sql).scalar()
            # Second run hits the decoded-vector cache; verification
            # re-checks the cached chunk and its _aux fingerprint.
            assert att.execute(sql).scalar() == first
        finally:
            set_verification_enabled(
                os.environ.get("REPRO_VERIFICATION") == "1"
            )

    def test_update_after_attach_invalidates(self, tmp_path):
        att = self._attached_boxes(tmp_path)
        set_verification_enabled(True)
        try:
            sql = ("SELECT count(*) FROM g WHERE box && "
                   "stbox('STBOX X((100,100),(200,200))')")
            before = att.execute(sql).scalar()
            assert before > 0
            att.execute(
                "UPDATE g SET box = stbox('STBOX X((0,0),(1,1))') "
                "WHERE id <= 150"
            )
            after = att.execute(sql).scalar()
            assert after < before
        finally:
            set_verification_enabled(
                os.environ.get("REPRO_VERIFICATION") == "1"
            )
