"""Vector/DataChunk/type-system unit tests."""

import numpy as np
import pytest

from repro.quack.errors import ExecutionError
from repro.quack.types import (
    ANY,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    SQLNULL,
    TIMESTAMP,
    TypeRegistry,
    VARCHAR,
    implicit_cast_cost,
)
from repro.quack.vector import (
    DataChunk,
    Vector,
    boolean_selection,
    concat_vectors,
)


class TestVector:
    def test_from_values_numeric(self):
        v = Vector.from_values(BIGINT, [1, 2, None, 4])
        assert v.data.dtype == np.int64
        assert v.to_list() == [1, 2, None, 4]
        assert not v.all_valid()

    def test_from_values_object(self):
        v = Vector.from_values(VARCHAR, ["a", None, "c"])
        assert v.value(0) == "a"
        assert v.value(1) is None

    def test_constant(self):
        v = Vector.constant(DOUBLE, 2.5, 4)
        assert v.to_list() == [2.5] * 4

    def test_constant_null(self):
        v = Vector.constant(VARCHAR, None, 3)
        assert v.to_list() == [None] * 3

    def test_slice_mask(self):
        v = Vector.from_values(BIGINT, [1, 2, 3, 4])
        mask = np.array([True, False, True, False])
        assert v.slice(mask).to_list() == [1, 3]

    def test_take(self):
        v = Vector.from_values(BIGINT, [10, 20, 30])
        assert v.take([2, 0, 2]).to_list() == [30, 10, 30]

    def test_value_unboxes_numpy(self):
        v = Vector.from_values(BIGINT, [1])
        assert type(v.value(0)) is int

    def test_with_type(self):
        v = Vector.from_values(BIGINT, [1]).with_type(TIMESTAMP)
        assert v.ltype == TIMESTAMP


class TestDataChunk:
    def test_count(self):
        chunk = DataChunk([Vector.from_values(BIGINT, [1, 2])])
        assert chunk.count == 2

    def test_misaligned_rejected(self):
        with pytest.raises(ExecutionError):
            DataChunk([
                Vector.from_values(BIGINT, [1, 2]),
                Vector.from_values(BIGINT, [1]),
            ])

    def test_rows(self):
        chunk = DataChunk([
            Vector.from_values(BIGINT, [1, 2]),
            Vector.from_values(VARCHAR, ["a", None]),
        ])
        assert chunk.rows() == [(1, "a"), (2, None)]

    def test_concat(self):
        a = Vector.from_values(BIGINT, [1])
        b = Vector.from_values(BIGINT, [2, None])
        assert concat_vectors([a, b]).to_list() == [1, 2, None]

    def test_boolean_selection_nulls_false(self):
        v = Vector.from_values(BOOLEAN, [True, False, None])
        assert boolean_selection(v).tolist() == [True, False, False]

    def test_boolean_selection_type_checked(self):
        with pytest.raises(ExecutionError):
            boolean_selection(Vector.from_values(BIGINT, [1]))


class TestTypeRegistry:
    def test_builtin_lookup(self):
        reg = TypeRegistry()
        assert reg.lookup("INTEGER") == INTEGER
        assert reg.lookup("int4") == INTEGER
        assert reg.lookup("timestamptz") == TIMESTAMP
        assert reg.lookup("NUMERIC") == DOUBLE

    def test_type_modifiers_stripped(self):
        reg = TypeRegistry()
        assert reg.lookup("DECIMAL(10,2)") == DOUBLE

    def test_unknown_raises(self):
        reg = TypeRegistry()
        with pytest.raises(Exception):
            reg.lookup("NOPE")
        assert not reg.known("NOPE")

    def test_register_user_type(self):
        from repro.quack.extension import make_user_type

        reg = TypeRegistry()
        stbox = make_user_type("STBOX", object)
        reg.register(stbox, aliases=("STBOX",))
        assert reg.lookup("stbox") == stbox
        assert reg.lookup("stbox").is_user

    def test_equality_by_name(self):
        from repro.quack.types import LogicalType

        assert LogicalType("X", "object") == LogicalType("X", "int64")


class TestImplicitCasts:
    def test_exact_is_free(self):
        assert implicit_cast_cost(INTEGER, INTEGER) == 0

    def test_widening_cheap(self):
        assert implicit_cast_cost(INTEGER, BIGINT) == 1
        assert implicit_cast_cost(BIGINT, DOUBLE) == 1

    def test_narrowing_allowed_but_pricier(self):
        widen = implicit_cast_cost(INTEGER, DOUBLE)
        narrow = implicit_cast_cost(DOUBLE, INTEGER)
        assert narrow > widen

    def test_null_casts_anywhere(self):
        assert implicit_cast_cost(SQLNULL, VARCHAR) == 0

    def test_any_accepts_all(self):
        assert implicit_cast_cost(VARCHAR, ANY) is not None

    def test_varchar_to_bool_not_implicit(self):
        assert implicit_cast_cost(VARCHAR, BOOLEAN) is None
